"""Wire-format compatibility tests against checked-in golden blobs.

The blobs under ``tests/golden/`` were produced by the *seed* codecs (PR 1,
commit fc291b9).  The vectorised codecs must (a) decode every one of them
bit-identically and (b) — except for the intentionally revised empty-SZ
payload — re-encode the same inputs to the same bytes, so blobs written by
either generation of the code remain interchangeable.

The fuzz half of the file round-trips randomly drawn symbol distributions
through the Huffman codec, deliberately covering the table-driven decoder's
edge paths: codes longer than the lookup window (slow-path escape), tiny
windows, single-symbol books, and SZ streams dominated by escape values.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.compression import (
    ErrorBoundMode,
    SZCompressor,
    huffman,
)
from repro.compression.huffman import HuffmanCodec
from repro.compression.interface import CompressorError, unpack_header
from repro.compression.sz import decompress_absolute_stream

GOLDEN_DIR = Path(__file__).parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "generate_golden", GOLDEN_DIR / "generate_golden.py"
)
generate_golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(generate_golden)

GOLDEN_CASES = sorted(p.stem for p in GOLDEN_DIR.glob("*.blob"))

#: blob name -> codec registry name able to decode it (decode dispatches on
#: the embedded tag, so constructor parameters don't matter).
_DECODER_FOR = {
    "huffman": None,  # module-level huffman.decode
    "sz": "sz",
    "zfp": "zfp",
    "xor": "xor-bitplane",
    "lossless": "lossless",
}


def _decoder_name(case: str) -> str | None:
    return _DECODER_FOR[case.split("_")[0]]


class TestGoldenDecode:
    @pytest.mark.parametrize("case", GOLDEN_CASES)
    def test_seed_blob_decodes_bit_identically(self, case, make_codec, engine):
        blob = (GOLDEN_DIR / f"{case}.blob").read_bytes()
        expected = np.load(GOLDEN_DIR / f"{case}.expected.npy")
        name = _decoder_name(case)
        if name is None:
            decoded = HuffmanCodec(engine=engine).decode(blob)
        else:
            decoded = make_codec(name).decompress(blob)
        assert decoded.dtype == expected.dtype or name is None
        assert np.array_equal(decoded, expected), case

    def test_every_blob_has_a_case(self):
        # A stray .blob without .expected.npy (or vice versa) is a broken
        # checked-in fixture, not a skip.
        blobs = {p.stem for p in GOLDEN_DIR.glob("*.blob")}
        expected = {p.name[: -len(".expected.npy")] for p in GOLDEN_DIR.glob("*.expected.npy")}
        assert blobs == expected and blobs


class TestGoldenEncodeStability:
    """The new encoders keep producing the seed's exact bytes."""

    def test_reencoding_golden_inputs_matches_blobs(self):
        regenerated = generate_golden.build_cases()
        for case, (blob, _) in regenerated.items():
            if case == "sz_rel_empty_seed_layout":
                continue  # layout intentionally revised; decode-covered below
            golden = (GOLDEN_DIR / f"{case}.blob").read_bytes()
            assert blob == golden, f"{case}: encoder output drifted from seed format"

    def test_empty_sz_payload_now_shares_absolute_stream_layout(self):
        # The seed wrote an ad-hoc <dIQQ> struct for empty blocks; the new
        # layout is the regular absolute-stream payload, so it must parse
        # with the shared reader (the seed blob still decodes via the
        # count == 0 short-circuit, asserted by the golden decode test).
        for mode in (ErrorBoundMode.ABSOLUTE, ErrorBoundMode.RELATIVE):
            compressor = SZCompressor(bound=1e-3, mode=mode)
            blob = compressor.compress(np.zeros(0))
            assert compressor.decompress(blob).size == 0
            _, count, _, offset = unpack_header(blob)
            assert count == 0
            assert decompress_absolute_stream(blob[offset:], 0, "zlib").size == 0


class TestHuffmanFuzz:
    @pytest.mark.parametrize("alphabet", [2, 3, 16, 300, 5000])
    def test_random_streams_round_trip(self, alphabet, rng):
        for size in (1, 7, 256, 20011):
            symbols = rng.integers(-alphabet, alphabet, size=size).astype(np.int64)
            assert np.array_equal(huffman.decode(huffman.encode(symbols)), symbols)

    @pytest.mark.parametrize("p", [0.05, 0.35, 0.9])
    def test_skewed_streams_round_trip(self, p, rng):
        symbols = (rng.geometric(p, 8192) - rng.geometric(p, 8192)).astype(np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(symbols)), symbols)

    def test_long_code_slow_path(self):
        # Doubling frequencies force a degenerate chain tree whose rarest
        # codes exceed any practical window, exercising the searchsorted
        # escape in both the per-offset table and the wavefront.
        counts = 2 ** np.arange(20, dtype=np.int64)
        symbols = np.repeat(np.arange(20, dtype=np.int64) - 10, counts)
        symbols = np.random.default_rng(5).permutation(symbols)
        blob = huffman.encode(symbols)
        assert np.array_equal(huffman.decode(blob), symbols)

    @pytest.mark.parametrize("window_bits", [1, 4, 9, 16])
    def test_narrow_windows_force_escapes(self, window_bits, rng):
        # A deliberately narrow window makes most codes take the slow path;
        # the result must not depend on the window width at all.
        symbols = rng.integers(-500, 500, size=4096).astype(np.int64)
        blob = huffman.encode(symbols)
        codec = HuffmanCodec(window_bits=window_bits)
        assert np.array_equal(codec.decode(blob), symbols)

    def test_window_bits_validated(self):
        with pytest.raises(CompressorError):
            HuffmanCodec(window_bits=0)
        with pytest.raises(CompressorError):
            HuffmanCodec(window_bits=17)

    def test_malformed_book_raises_compressor_error(self, rng):
        # Hand-corrupt a valid blob's code book: three codes of length 1
        # violate the Kraft inequality and would overflow the window table.
        import struct

        symbols = np.array([1, 2, 3] * 100, dtype=np.int64)
        blob = bytearray(huffman.encode(symbols))
        (book_len,) = struct.unpack_from("<I", blob, 8)
        (entries,) = struct.unpack_from("<I", blob, 12)
        assert entries == 3
        lengths_off = 12 + 4 + 8 * entries
        blob[lengths_off : lengths_off + entries] = bytes([1, 1, 1])
        with pytest.raises(CompressorError, match="Kraft"):
            huffman.decode(bytes(blob))
        blob[lengths_off : lengths_off + entries] = bytes([0, 1, 2])
        with pytest.raises(CompressorError, match="code length"):
            huffman.decode(bytes(blob))
        blob[lengths_off : lengths_off + entries] = bytes([65, 66, 66])
        with pytest.raises(CompressorError, match="code length"):
            huffman.decode(bytes(blob))

    def test_truncated_bitstream_raises_exhausted(self, rng):
        symbols = rng.integers(0, 50, size=2048).astype(np.int64)
        blob = huffman.encode(symbols)
        # Slice inside the packed code stream (past the book) so the failure
        # is the stream-exhausted path, not a malformed book.
        with pytest.raises(CompressorError, match="exhausted"):
            huffman.decode(blob[:-40])

    def test_decode_threads_agree_with_serial(self, rng):
        # The decoder keeps per-thread scratch buffers; concurrent decodes
        # must not bleed into each other.
        from concurrent.futures import ThreadPoolExecutor

        streams = [
            rng.integers(-a, a, size=s).astype(np.int64)
            for a, s in [(5, 10000), (4000, 3000), (2, 60000), (300, 1)]
        ] * 4
        blobs = [huffman.encode(s) for s in streams]
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(huffman.decode, blobs))
        for symbols, result in zip(streams, results):
            assert np.array_equal(result, symbols)


class TestSZEscapeFuzz:
    @pytest.mark.parametrize("max_bins", [4, 16, 65536])
    def test_escape_heavy_streams_respect_bound(self, max_bins, rng):
        bound = 1e-5
        jumps = np.where(rng.random(8192) < 0.2, rng.normal(0.0, 1e6, 8192), 0.0)
        data = np.cumsum(rng.normal(0.0, 1e-3, 8192)) + np.cumsum(jumps)
        compressor = SZCompressor(
            bound=bound, mode=ErrorBoundMode.ABSOLUTE, max_bins=max_bins
        )
        recovered = compressor.decompress(compressor.compress(data))
        assert np.abs(recovered - data).max() <= bound * (1 + 1e-12)

    def test_all_escape_stream(self, rng):
        # With the minimum bin count every delta escapes: the cumsum carries
        # no information and reconstruction leans entirely on the anchors.
        data = rng.normal(0.0, 1e8, 1024)
        compressor = SZCompressor(bound=1e-6, mode=ErrorBoundMode.ABSOLUTE, max_bins=4)
        recovered = compressor.decompress(compressor.compress(data))
        assert np.abs(recovered - data).max() <= 1e-6 * (1 + 1e-12)

    @pytest.mark.parametrize("mode", [ErrorBoundMode.ABSOLUTE, ErrorBoundMode.RELATIVE])
    def test_empty_block_round_trip(self, mode):
        compressor = SZCompressor(bound=1e-3, mode=mode)
        recovered = compressor.decompress(compressor.compress(np.zeros(0)))
        assert recovered.size == 0 and recovered.dtype == np.float64
