"""PauliObservable: construction, algebra, and dense/compressed agreement.

The compressed-path tests enforce the subsystem's headline property: the
expectation value is computed blockwise on the compressed representation —
``statevector()`` is monkeypatched to raise, so any densifying regression
fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import CompressedSimulator, PauliObservable, QuantumCircuit, SimulatorConfig
from repro.applications import (
    expected_cut_from_counts,
    expected_cut_from_zz,
    maxcut_observable,
    qaoa_maxcut_circuit,
    random_regular_graph,
)
from repro.circuits import ghz_circuit
from repro.statevector import DenseSimulator, simulate_statevector


def forbid_statevector(monkeypatch):
    """Make any statevector() materialisation on the compressed path fail."""

    def _forbidden(self):
        raise AssertionError(
            "compressed expectation must not materialise the statevector"
        )

    monkeypatch.setattr(CompressedSimulator, "statevector", _forbidden)


class TestConstruction:
    def test_single_string_term(self):
        observable = PauliObservable("ZZI")
        assert observable.terms == ((1.0, "ZZI"),)
        assert observable.num_qubits == 3
        assert observable.is_diagonal

    def test_lowercase_accepted(self):
        assert PauliObservable("zxy").terms == ((1.0, "ZXY"),)

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError, match="invalid Pauli"):
            PauliObservable("ZQI")

    def test_empty_string_rejected(self):
        with pytest.raises(ValueError):
            PauliObservable("")

    def test_mismatched_widths_rejected(self):
        with pytest.raises(ValueError, match="same width"):
            PauliObservable.from_terms([(1.0, "ZZ"), (1.0, "ZZZ")])

    def test_no_terms_rejected(self):
        with pytest.raises(ValueError):
            PauliObservable.from_terms([])

    def test_non_finite_coefficient_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            PauliObservable("Z", float("nan"))

    def test_helpers(self):
        assert PauliObservable.single("X", 1, 3).terms == ((1.0, "IXI"),)
        assert PauliObservable.zz(0, 2, 3).terms == ((1.0, "ZIZ"),)
        with pytest.raises(ValueError):
            PauliObservable.single("Z", 5, 3)
        with pytest.raises(ValueError):
            PauliObservable.zz(1, 1, 3)

    def test_labels(self):
        observable = PauliObservable("ZZ", 0.5)
        assert observable.label == "0.5*ZZ"
        named = observable.with_label("energy")
        assert named.label == "energy"
        assert named.terms == observable.terms


class TestAlgebra:
    def test_weighted_sum(self):
        observable = 0.5 * PauliObservable("ZZ") + 0.25 * PauliObservable("XX")
        assert set(observable.terms) == {(0.5, "ZZ"), (0.25, "XX")}
        assert not observable.is_diagonal
        assert observable.coefficient_norm() == pytest.approx(0.75)

    def test_duplicate_terms_merge(self):
        observable = PauliObservable("ZI") + PauliObservable("ZI", 2.0)
        assert observable.terms == ((3.0, "ZI"),)

    def test_subtraction_and_negation(self):
        observable = PauliObservable("Z") - PauliObservable("Z", 0.25)
        assert observable.terms == ((0.75, "Z"),)
        assert (-observable).terms == ((-0.75, "Z"),)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliObservable("ZZ") + PauliObservable("Z")


class TestDenseExpectation:
    def test_computational_basis_z(self):
        zero = np.zeros(4, dtype=np.complex128)
        zero[0] = 1.0  # |00>
        assert PauliObservable("ZI").expectation(zero) == pytest.approx(1.0)
        one = np.zeros(4, dtype=np.complex128)
        one[1] = 1.0  # |q0=1>
        assert PauliObservable("ZI").expectation(one) == pytest.approx(-1.0)
        assert PauliObservable("IZ").expectation(one) == pytest.approx(1.0)

    def test_plus_state_x(self):
        plus = np.full(2, 1 / np.sqrt(2), dtype=np.complex128)
        assert PauliObservable("X").expectation(plus) == pytest.approx(1.0)
        assert PauliObservable("Z").expectation(plus) == pytest.approx(0.0, abs=1e-12)

    def test_bell_state_correlations(self):
        bell = np.zeros(4, dtype=np.complex128)
        bell[0] = bell[3] = 1 / np.sqrt(2)
        assert PauliObservable("ZZ").expectation(bell) == pytest.approx(1.0)
        assert PauliObservable("XX").expectation(bell) == pytest.approx(1.0)
        assert PauliObservable("YY").expectation(bell) == pytest.approx(-1.0)

    def test_dense_simulator_input(self):
        simulator = DenseSimulator(2)
        simulator.apply_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        assert PauliObservable("ZZ").expectation(simulator) == pytest.approx(1.0)

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            PauliObservable("ZZ").expectation(np.ones(8, dtype=np.complex128))

    def test_expectation_z_consistency(self):
        circuit = QuantumCircuit(3).h(0).ry(0.7, 1).cx(0, 2)
        simulator = DenseSimulator(3)
        simulator.apply_circuit(circuit)
        for qubit in range(3):
            assert PauliObservable.single("Z", qubit, 3).expectation(
                simulator
            ) == pytest.approx(simulator.expectation_z(qubit))


class TestCompressedExpectation:
    def test_ghz_diagonal_and_offdiagonal(self, simulator_config, monkeypatch):
        forbid_statevector(monkeypatch)
        num_qubits = 8
        circuit = ghz_circuit(num_qubits)
        reference = simulate_statevector(circuit)
        observable = (
            PauliObservable("Z" * num_qubits)
            + 0.5 * PauliObservable("X" * num_qubits)
            + 2.0 * PauliObservable.zz(0, num_qubits - 1, num_qubits)
        )
        expected = observable.expectation(reference)
        simulator = CompressedSimulator(
            num_qubits, simulator_config(num_ranks=4, block_amplitudes=16)
        )
        simulator.apply_circuit(circuit)
        assert observable.expectation(simulator) == pytest.approx(expected, abs=1e-9)
        # GHZ ground truth for even n: <Z^n> = 1, <X^n> = 1, <Z_0 Z_{n-1}> = 1.
        assert observable.expectation(simulator) == pytest.approx(
            1.0 + 0.5 * 1.0 + 2.0 * 1.0, abs=1e-9
        )

    def test_y_terms_match_dense(self, simulator_config, monkeypatch):
        forbid_statevector(monkeypatch)
        circuit = QuantumCircuit(6).h(0).cx(0, 1).s(1).ry(0.9, 2).cx(1, 3).t(3)
        reference = simulate_statevector(circuit)
        observable = PauliObservable.from_terms(
            [(1.0, "YYIIII"), (0.7, "IZYIXI"), (-0.3, "ZIIZII")]
        )
        simulator = CompressedSimulator(
            6, simulator_config(num_ranks=2, block_amplitudes=8)
        )
        simulator.apply_circuit(circuit)
        assert observable.expectation(simulator) == pytest.approx(
            observable.expectation(reference), abs=1e-9
        )

    def test_width_mismatch_rejected(self, simulator_config):
        simulator = CompressedSimulator(4, simulator_config(block_amplitudes=4))
        with pytest.raises(ValueError, match="4"):
            PauliObservable("ZZ").expectation(simulator)

    def test_fork_leaves_state_untouched(self, simulator_config):
        circuit = QuantumCircuit(5).h(0).cx(0, 1).cx(1, 2)
        simulator = CompressedSimulator(
            5, simulator_config(num_ranks=2, block_amplitudes=8)
        )
        simulator.apply_circuit(circuit)
        blobs_before = [
            entry.blob for _key, entry in simulator.state.iter_blocks()
        ]
        PauliObservable("XXIII").expectation(simulator)
        blobs_after = [entry.blob for _key, entry in simulator.state.iter_blocks()]
        assert blobs_before == blobs_after


class TestQaoaAcceptance:
    """The ISSUE acceptance criterion: >=14-qubit QAOA, dense vs compressed."""

    NUM_QUBITS = 14

    @pytest.fixture(scope="class")
    def qaoa_setup(self):
        graph = random_regular_graph(self.NUM_QUBITS, degree=4, seed=11)
        rng = np.random.default_rng(11)
        circuit = qaoa_maxcut_circuit(
            graph,
            gammas=rng.uniform(0.1, 0.9, size=2),
            betas=rng.uniform(0.1, 0.9, size=2),
        )
        return graph, circuit

    def test_lossless_energy_matches_dense(self, qaoa_setup, monkeypatch):
        forbid_statevector(monkeypatch)
        graph, circuit = qaoa_setup
        observable = maxcut_observable(graph)
        dense = repro.run(circuit, backend="dense", observables=observable)
        compressed = repro.run(
            circuit,
            backend="compressed",
            observables=observable,
            config=SimulatorConfig(num_ranks=2),
        )
        # Lossless compression: the active error bound is 0, agreement is
        # limited only by floating-point noise.
        assert compressed.report["final_error_bound"] == 0.0
        assert compressed.expectation(observable.label) == pytest.approx(
            dense.expectation(observable.label), abs=1e-8
        )

    def test_lossy_energy_within_error_bound(self, qaoa_setup, monkeypatch):
        forbid_statevector(monkeypatch)
        graph, circuit = qaoa_setup
        observable = maxcut_observable(graph)
        bound = 1e-3
        dense = repro.run(circuit, backend="dense", observables=observable)
        compressed = repro.run(
            circuit,
            backend="compressed",
            observables=observable,
            config=SimulatorConfig(
                num_ranks=2, start_lossless=False, error_levels=(bound,)
            ),
        )
        assert compressed.report["final_error_bound"] == bound
        # A pointwise relative bound delta per recompression perturbs each
        # |a|^2 by O(delta); the expectation of a sum of +-1 observables is
        # then off by at most ~coefficient_norm * O(gates * delta).  The
        # fidelity lower bound gives the same scale; use it as the active
        # error budget.
        fidelity_bound = compressed.report["fidelity_lower_bound"]
        budget = observable.coefficient_norm() * 4.0 * (1.0 - fidelity_bound)
        difference = abs(
            compressed.expectation(observable.label)
            - dense.expectation(observable.label)
        )
        assert difference <= max(budget, 1e-6)

    def test_energy_consistent_with_sampling(self, qaoa_setup):
        graph, circuit = qaoa_setup
        observable = maxcut_observable(graph)
        result = repro.run(
            circuit,
            backend="compressed",
            shots=4000,
            observables=observable,
            seed=5,
            config=SimulatorConfig(num_ranks=2),
        )
        exact_cut = expected_cut_from_zz(
            graph, result.expectation(observable.label)
        )
        sampled_cut = expected_cut_from_counts(graph, result.counts)
        # Sampling 4000 shots estimates the exact expectation to ~0.1 edges.
        assert sampled_cut == pytest.approx(exact_cut, abs=0.5)


class TestMaxcutObservableHelpers:
    def test_edge_terms(self):
        graph = random_regular_graph(6, degree=2, seed=1)
        observable = maxcut_observable(graph)
        assert len(observable.terms) == graph.number_of_edges()
        for coeff, paulis in observable.terms:
            assert coeff == 1.0
            assert paulis.count("Z") == 2

    def test_expected_cut_identity(self):
        graph = random_regular_graph(6, degree=2, seed=1)
        edges = graph.number_of_edges()
        # All spins aligned (<ZuZv> = 1): nothing is cut.
        assert expected_cut_from_zz(graph, float(edges)) == 0.0
        # Perfect anticorrelation on every edge: everything is cut.
        assert expected_cut_from_zz(graph, -float(edges)) == float(edges)
