"""Unit tests for the benchmark trend harness (``benchmarks/trend.py``).

The harness is what turns a silent decode-throughput regression into a red
CI build, so its own logic — summarising a bench JSON, matching baselines by
environment, the 30% gate, the append-always contract — is pinned here with
fabricated bench payloads (no actual benchmarking).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_spec = importlib.util.spec_from_file_location(
    "trend", Path(__file__).parent.parent / "benchmarks" / "trend.py"
)
trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(trend)


def _bench_payload(decode_mb_s: float = 100.0, numba: bool = False) -> dict:
    engines = ["numba", "numpy"] if numba else ["numpy"]
    results = {
        "numpy": {
            "huffman_decode_seconds": 0.5,
            "huffman_encode_seconds": 0.4,
            "sz_decode_seconds": 0.2,
            # Deliberately differs from the legacy huffman_speedup-derived
            # rate (2.0) so the override is observable.
            "huffman_decode_msym_s": 2.5,
        }
    }
    if numba:
        results["numba"] = {
            "huffman_decode_seconds": 0.1,
            "huffman_encode_seconds": 0.1,
            "sz_decode_seconds": 0.05,
            "huffman_decode_msym_s": 10.0,
        }
    return {
        "meta": {
            "quick": False,
            "huffman_symbols": 1 << 20,
            "block_sizes": [1 << 14, 1 << 17, 1 << 20],
            "available_cpus": 4,
        },
        "huffman_speedup": {
            "symbols": 1 << 20,
            "vectorised_seconds": (1 << 20) / (2.0 * 1e6),
        },
        "throughput": [
            {
                "codec": "sz-rel",
                "block": 1 << 17,
                "ratio": 8.0,
                "encode_mb_s": 50.0,
                "decode_mb_s": decode_mb_s,
            },
            {
                "codec": "huffman",
                "block": 1 << 17,
                "ratio": 4.0,
                "encode_mb_s": 80.0,
                "decode_mb_s": 2 * decode_mb_s,
            },
        ],
        "engines": {
            "available": engines,
            "symbols": 1 << 20,
            "block": 1 << 20,
            "results": results,
            "numba_decode_speedup": 5.0 if numba else None,
            "floor": 3.0,
        },
    }


def _record(decode_mb_s: float = 100.0, commit: str = "abc1234", **kwargs) -> dict:
    return trend.summarise(
        _bench_payload(decode_mb_s, **kwargs), commit=commit, timestamp="t"
    )


class TestSummarise:
    def test_extracts_per_codec_and_per_engine_series(self):
        record = _record(numba=True)
        assert record["decode_mb_s"]["sz-rel@131072"] == 100.0
        assert record["decode_mb_s"]["huffman@131072"] == 200.0
        assert record["huffman_decode_msym_s"]["numba"] == 10.0
        assert record["engines_available"] == ["numba", "numpy"]
        assert record["quick"] is False
        assert record["commit"] == "abc1234"

    def test_engine_section_overrides_legacy_huffman_series(self):
        # Both sections report a numpy Huffman decode rate; the engine matrix
        # (which warmed up and pinned the engine explicitly) wins.
        record = _record()
        assert record["huffman_decode_msym_s"]["numpy"] == 2.5

    def test_partial_bench_runs_summarise_cleanly(self):
        record = trend.summarise({"meta": {"quick": True}}, commit="x", timestamp="t")
        assert record["decode_mb_s"] == {}
        assert record["huffman_decode_msym_s"] == {}
        assert record["quick"] is True


class TestBaselineMatching:
    def test_most_recent_matching_entry_wins(self):
        current = _record()
        older, newer = _record(90.0, commit="old"), _record(95.0, commit="new")
        assert trend.find_baseline([older, newer], current)["commit"] == "new"

    def test_environment_mismatch_is_not_a_baseline(self):
        current = _record()
        quick = dict(_record(), quick=True)
        other_size = dict(_record(), huffman_symbols=1 << 16)
        other_engines = _record(numba=True)
        assert trend.find_baseline([quick, other_size, other_engines], current) is None

    def test_empty_history(self):
        assert trend.find_baseline([], _record()) is None


class TestCompare:
    def test_within_gate_passes(self):
        # 25% drop < 30% gate.
        assert trend.compare(_record(75.0), _record(100.0), 0.30) == []

    def test_large_drop_fails(self):
        regressions = trend.compare(_record(60.0), _record(100.0), 0.30)
        # Both throughput series dropped 40%.
        assert len(regressions) == 2
        assert any("sz-rel@131072" in r for r in regressions)

    def test_improvement_passes(self):
        assert trend.compare(_record(200.0), _record(100.0), 0.30) == []

    def test_new_series_is_not_a_regression(self):
        current, baseline = _record(numba=True), _record()
        current["decode_mb_s"] = baseline["decode_mb_s"].copy()
        assert trend.compare(current, baseline, 0.30) == []


def _soak_summary(**overrides) -> dict:
    summary = {
        "kind": "serve",
        "jobs": 120,
        "tenants": {"t0": 1, "t1": 2, "t2": 3, "t3": 4},
        "fairness_rounds_checked": 7,
        "fairness_ok": True,
        "starvation_gaps": {"t0": 9, "t1": 7, "t2": 5, "t3": 3},
        "starvation_ok": True,
        "recoveries": 1,
        "bit_identity_checked": 120,
        "bit_identity_mismatches": 0,
        "cache": {"entries": 34, "max_entries": 256, "hits": 86, "misses": 34, "evictions": 0},
        "dispatched": 120,
        "duration_seconds": 1.5,
    }
    summary.update(overrides)
    return summary


class TestServeRecord:
    def test_distills_soak_summary(self):
        record = trend.serve_record(_soak_summary(), commit="abc1234", timestamp="t")
        assert record["kind"] == "serve"
        assert record["schema"] == 1
        assert record["jobs"] == 120
        assert record["fairness_ok"] is True
        assert record["recoveries"] == 1
        assert record["bit_identity_mismatches"] == 0
        assert record["cache_hit_rate"] == pytest.approx(86 / 120)
        assert record["duration_seconds"] == 1.5

    def test_empty_cache_yields_no_hit_rate(self):
        record = trend.serve_record(
            _soak_summary(cache={"hits": 0, "misses": 0}), commit="x", timestamp="t"
        )
        assert record["cache_hit_rate"] is None

    def test_serve_records_never_match_codec_baselines(self):
        # Serve records share TREND.jsonl with codec records; they must
        # never be picked up as a codec throughput baseline.
        serve = trend.serve_record(_soak_summary(), commit="s", timestamp="t")
        assert trend.find_baseline([serve], _record()) is None

    def test_main_serve_appends_record(self, tmp_path, capsys):
        summary_path = tmp_path / "serve-soak.json"
        summary_path.write_text(json.dumps(_soak_summary()))
        trend_path = tmp_path / "TREND.jsonl"
        code = trend.main(
            ["--serve", str(summary_path), "--trend", str(trend_path)]
        )
        assert code == 0
        entries = trend.load_trend(trend_path)
        assert len(entries) == 1
        assert entries[0]["kind"] == "serve"
        assert "serve soak" in capsys.readouterr().out

    def test_main_serve_missing_summary_is_an_error(self, tmp_path, capsys):
        code = trend.main(
            [
                "--serve",
                str(tmp_path / "missing.json"),
                "--trend",
                str(tmp_path / "TREND.jsonl"),
            ]
        )
        assert code == 2
        assert "no serve-soak summary" in capsys.readouterr().err


class TestMain:
    def _run(self, tmp_path: Path, payload: dict, argv: list[str] = ()) -> int:
        results = tmp_path / "BENCH_codec.json"
        results.write_text(json.dumps(payload))
        return trend.main(
            ["--results", str(results), "--trend", str(tmp_path / "TREND.jsonl"), *argv]
        )

    def test_first_run_records_and_passes(self, tmp_path, capsys):
        assert self._run(tmp_path, _bench_payload()) == 0
        entries = trend.load_trend(tmp_path / "TREND.jsonl")
        assert len(entries) == 1
        assert "no environment-matched baseline" in capsys.readouterr().out

    def test_stable_reruns_accumulate_and_pass(self, tmp_path):
        assert self._run(tmp_path, _bench_payload(100.0)) == 0
        assert self._run(tmp_path, _bench_payload(98.0)) == 0
        assert len(trend.load_trend(tmp_path / "TREND.jsonl")) == 2

    def test_regression_fails_but_is_still_recorded(self, tmp_path, capsys):
        assert self._run(tmp_path, _bench_payload(100.0)) == 0
        assert self._run(tmp_path, _bench_payload(50.0)) == 1
        # The data point lands in the history even though the gate failed.
        entries = trend.load_trend(tmp_path / "TREND.jsonl")
        assert len(entries) == 2
        assert "regressed" in capsys.readouterr().out

    def test_check_only_does_not_append(self, tmp_path):
        assert self._run(tmp_path, _bench_payload(100.0)) == 0
        assert self._run(tmp_path, _bench_payload(50.0), ["--check-only"]) == 1
        assert len(trend.load_trend(tmp_path / "TREND.jsonl")) == 1

    def test_threshold_is_configurable(self, tmp_path):
        assert self._run(tmp_path, _bench_payload(100.0)) == 0
        assert self._run(tmp_path, _bench_payload(50.0), ["--threshold", "0.6"]) == 0

    def test_missing_results_file_is_an_error(self, tmp_path, capsys):
        code = trend.main(
            [
                "--results",
                str(tmp_path / "missing.json"),
                "--trend",
                str(tmp_path / "TREND.jsonl"),
            ]
        )
        assert code == 2
        assert "no benchmark results" in capsys.readouterr().err

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        self._run(tmp_path, _bench_payload())
        raw = (tmp_path / "TREND.jsonl").read_text().splitlines()
        assert all(json.loads(line)["schema"] == 1 for line in raw)
