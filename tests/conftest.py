"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.datasets import qaoa_state, supremacy_state
from repro.compression import get_compressor
from repro.core import SimulatorConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""

    return np.random.default_rng(12345)


@pytest.fixture(scope="module", params=["numpy", "numba"])
def engine(request) -> str:
    """Codec kernel engine name, parametrized over every known engine.

    Module-scoped (flox idiom) so each test module using it — directly or via
    :func:`make_codec` — runs once per engine.  The ``"numba"`` leg xfails,
    rather than errors, on hosts without numba: the fallback path is covered
    by the dedicated registry tests, not by re-running the whole suite
    against what would silently be the numpy engine again.
    """

    if request.param == "numba":
        try:
            import numba  # noqa: F401
        except ImportError:
            pytest.xfail("numba is not installed")
    return request.param


@pytest.fixture(
    scope="module", params=["xor-bitplane", "sz", "sz-complex", "reshuffle"]
)
def compressor_name(request) -> str:
    """Registry name of a lossy compressor, parametrized over every family.

    Module-scoped so each test module using it runs once per compressor
    (the paper's Solutions and the SZ variants).
    """

    return request.param


@pytest.fixture(
    scope="module", params=["sz", "zfp", "xor-bitplane", "lossless"]
)
def codec_name(request) -> str:
    """Registry name of a *codec* (one representative per wire format).

    Mirrors :func:`compressor_name` but spans the codec families whose blob
    formats the golden tests pin — including the lossless stage, which
    ``compressor_name`` (lossy-only) deliberately excludes.  Use
    :func:`make_codec` to instantiate.
    """

    return request.param


@pytest.fixture(scope="module")
def make_codec(engine):
    """Factory instantiating a codec by registry name with laptop defaults.

    The lossless codec takes no error bound; every lossy codec gets the same
    mid-range relative/absolute bound so parametrized tests compare formats,
    not tolerances.  Codecs are built with the current :func:`engine`
    parameter (overridable per call), so every test module using this
    factory exercises all engines.
    """

    def _make(name: str, bound: float = 1e-3, **overrides):
        overrides.setdefault("engine", engine)
        if name == "lossless":
            return get_compressor(name, **overrides)
        return get_compressor(name, bound=bound, **overrides)

    return _make


@pytest.fixture(scope="session")
def simulator_config():
    """Factory for laptop-scale :class:`SimulatorConfig` objects.

    Centralises the partition-geometry boilerplate the simulator tests used
    to repeat inline: ``simulator_config(num_ranks=4, block_amplitudes=8)``
    or any other keyword accepted by :class:`SimulatorConfig`.
    """

    def _make(num_ranks: int = 2, block_amplitudes: int = 16, **overrides) -> SimulatorConfig:
        return SimulatorConfig(
            num_ranks=num_ranks, block_amplitudes=block_amplitudes, **overrides
        )

    return _make


@pytest.fixture(scope="session")
def qaoa_snapshot() -> np.ndarray:
    """Small QAOA state snapshot (float64 interleaved view), shared per session."""

    return qaoa_state(num_qubits=12, seed=3).view(np.float64)


@pytest.fixture(scope="session")
def sup_snapshot() -> np.ndarray:
    """Small supremacy-circuit state snapshot (float64 interleaved view)."""

    return supremacy_state(num_qubits=12, depth=8, seed=3).view(np.float64)


@pytest.fixture
def spiky_data(rng: np.random.Generator) -> np.ndarray:
    """Synthetic spiky data resembling quantum amplitudes (Figure 9 style)."""

    magnitudes = np.exp(rng.normal(-9.0, 2.0, size=8192))
    signs = rng.choice([-1.0, 1.0], size=8192)
    return magnitudes * signs
