"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.datasets import qaoa_state, supremacy_state


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""

    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def qaoa_snapshot() -> np.ndarray:
    """Small QAOA state snapshot (float64 interleaved view), shared per session."""

    return qaoa_state(num_qubits=12, seed=3).view(np.float64)


@pytest.fixture(scope="session")
def sup_snapshot() -> np.ndarray:
    """Small supremacy-circuit state snapshot (float64 interleaved view)."""

    return supremacy_state(num_qubits=12, depth=8, seed=3).view(np.float64)


@pytest.fixture
def spiky_data(rng: np.random.Generator) -> np.ndarray:
    """Synthetic spiky data resembling quantum amplitudes (Figure 9 style)."""

    magnitudes = np.exp(rng.normal(-9.0, 2.0, size=8192))
    signs = rng.choice([-1.0, 1.0], size=8192)
    return magnitudes * signs
