"""Unit tests for the core building blocks: config, blocks, cache, adaptive,
fidelity and report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import LosslessCompressor, XorBitplaneCompressor
from repro.core import (
    AdaptiveErrorController,
    BlockCache,
    BlockStore,
    CompressedBlock,
    FidelityTracker,
    ScratchPool,
    SimulationReport,
    SimulatorConfig,
    fidelity_curve,
    fidelity_lower_bound,
)
from repro.distributed import Partition


class TestSimulatorConfig:
    def test_defaults_are_paper_levels(self):
        config = SimulatorConfig()
        assert config.error_levels == (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
        assert config.lossy_compressor == "xor-bitplane"
        assert config.cache_lines == 64

    def test_rejects_non_power_of_two_ranks(self):
        with pytest.raises(ValueError):
            SimulatorConfig(num_ranks=3)

    def test_rejects_unsorted_levels(self):
        with pytest.raises(ValueError):
            SimulatorConfig(error_levels=(1e-1, 1e-3))

    def test_rejects_nonpositive_levels(self):
        with pytest.raises(ValueError):
            SimulatorConfig(error_levels=(0.0, 1e-3))

    def test_rejects_bad_block_amplitudes(self):
        with pytest.raises(ValueError):
            SimulatorConfig(block_amplitudes=3)

    def test_resolve_block_amplitudes_explicit(self):
        config = SimulatorConfig(num_ranks=2, block_amplitudes=32)
        assert config.resolve_block_amplitudes(10, 2) == 32

    def test_resolve_block_amplitudes_auto(self):
        config = SimulatorConfig(num_ranks=4)
        resolved = config.resolve_block_amplitudes(12, 4)
        # 2^12 / 4 ranks = 1024 per rank -> four blocks of 256.
        assert resolved == 256

    def test_resolve_rejects_oversized_block(self):
        config = SimulatorConfig(num_ranks=4, block_amplitudes=1 << 12)
        with pytest.raises(ValueError):
            config.resolve_block_amplitudes(12, 4)


class TestBlockStore:
    def setup_method(self):
        self.partition = Partition(num_qubits=6, num_ranks=2, block_amplitudes=8)
        self.store = BlockStore(self.partition)

    def test_put_get_roundtrip(self):
        block = CompressedBlock(blob=b"abc", compressor="lossless", bound=0.0)
        self.store.put(1, 2, block)
        assert self.store.get(1, 2).blob == b"abc"

    def test_get_uninitialised_raises(self):
        with pytest.raises(KeyError):
            self.store.get(0, 0)

    def test_memory_accounting(self):
        for rank in range(2):
            for block in range(self.partition.blocks_per_rank):
                self.store.put(
                    rank, block, CompressedBlock(b"x" * 10, "lossless", 0.0)
                )
        assert self.store.compressed_bytes() == 10 * self.partition.total_blocks
        assert self.store.rank_compressed_bytes(0) == 10 * self.partition.blocks_per_rank
        expected_scratch = 2 * self.partition.block_bytes * 2
        assert self.store.total_bytes_with_scratch() == (
            self.store.compressed_bytes() + expected_scratch
        )
        assert self.store.compression_ratio() == pytest.approx(
            self.partition.uncompressed_bytes() / self.store.compressed_bytes()
        )
        assert self.store.bounds_in_use() == {0.0}


class TestScratchPool:
    def test_load_complex_roundtrip(self, rng):
        pool = ScratchPool(block_amplitudes=16)
        values = rng.normal(size=32)  # float64 view of 16 complex amplitudes
        buffer = pool.load(0, values)
        assert buffer.dtype == np.complex128
        assert np.array_equal(buffer.view(np.float64), values)

    def test_load_wrong_size_rejected(self, rng):
        pool = ScratchPool(block_amplitudes=16)
        with pytest.raises(ValueError):
            pool.load(0, rng.normal(size=10))

    def test_buffers_are_reused(self):
        pool = ScratchPool(block_amplitudes=4)
        first = pool.buffer(0)
        second = pool.buffer(0)
        assert first is second

    def test_needs_at_least_one_buffer(self):
        with pytest.raises(ValueError):
            ScratchPool(4, buffers=0)


class TestBlockCache:
    def test_hit_after_insert(self):
        cache = BlockCache(lines=4)
        cache.insert(("h", 0), b"in1", b"in2", b"out1", b"out2")
        assert cache.lookup(("h", 0), b"in1", b"in2") == (b"out1", b"out2")
        assert cache.stats.hits == 1

    def test_miss_on_different_operation(self):
        cache = BlockCache(lines=4)
        cache.insert(("h", 0), b"in1", None, b"out1", None)
        assert cache.lookup(("x", 0), b"in1", None) is None

    def test_miss_on_different_blob(self):
        cache = BlockCache(lines=4)
        cache.insert(("h", 0), b"in1", None, b"out1", None)
        assert cache.lookup(("h", 0), b"in2", None) is None

    def test_lru_eviction(self):
        cache = BlockCache(lines=2, miss_disable_threshold=None)
        cache.insert(("op", 1), b"a", None, b"ra", None)
        cache.insert(("op", 2), b"b", None, b"rb", None)
        cache.lookup(("op", 1), b"a", None)  # touch "a" so "b" is LRU
        cache.insert(("op", 3), b"c", None, b"rc", None)
        assert cache.lookup(("op", 2), b"b", None) is None  # evicted
        assert cache.lookup(("op", 1), b"a", None) is not None
        assert cache.stats.evictions == 1

    def test_auto_disable_after_pure_misses(self):
        cache = BlockCache(lines=4, miss_disable_threshold=5)
        for i in range(5):
            assert cache.lookup(("op", i), f"{i}".encode(), None) is None
        assert not cache.enabled
        # Once disabled, inserts and lookups are no-ops.
        cache.insert(("op", 0), b"0", None, b"r", None)
        assert len(cache) == 0
        assert cache.lookup(("op", 0), b"0", None) is None

    def test_no_disable_when_hits_exist(self):
        cache = BlockCache(lines=4, miss_disable_threshold=3)
        cache.insert(("op", 0), b"a", None, b"r", None)
        cache.lookup(("op", 0), b"a", None)
        for i in range(10):
            cache.lookup(("op", i + 1), b"zzz", None)
        assert cache.enabled

    def test_clear_reenables(self):
        cache = BlockCache(lines=2, miss_disable_threshold=1)
        cache.lookup(("op", 0), b"x", None)
        assert not cache.enabled
        cache.clear()
        assert cache.enabled

    def test_hit_rate(self):
        cache = BlockCache(lines=2, miss_disable_threshold=None)
        cache.insert(("op", 0), b"a", None, b"r", None)
        cache.lookup(("op", 0), b"a", None)
        cache.lookup(("op", 0), b"zz", None)
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.as_dict()["hits"] == 1

    def test_invalid_line_count(self):
        with pytest.raises(ValueError):
            BlockCache(lines=0)


class TestAdaptiveErrorController:
    def _config(self, budget=None, start_lossless=True):
        return SimulatorConfig(
            memory_budget_bytes=budget,
            start_lossless=start_lossless,
            error_levels=(1e-5, 1e-3, 1e-1),
        )

    def test_starts_lossless(self):
        controller = AdaptiveErrorController(self._config())
        assert controller.is_lossless
        assert controller.current_bound == 0.0
        assert isinstance(controller.compressor(), LosslessCompressor)

    def test_starts_lossy_when_configured(self):
        controller = AdaptiveErrorController(self._config(start_lossless=False))
        assert not controller.is_lossless
        assert controller.current_bound == 1e-5
        assert isinstance(controller.compressor(), XorBitplaneCompressor)

    def test_escalation_sequence(self):
        controller = AdaptiveErrorController(self._config(budget=1000))
        assert controller.maybe_escalate(2000, gate_index=1)
        assert controller.current_bound == 1e-5
        assert controller.maybe_escalate(2000, gate_index=2)
        assert controller.current_bound == 1e-3
        assert controller.maybe_escalate(2000, gate_index=3)
        assert controller.current_bound == 1e-1
        assert controller.exhausted
        assert not controller.maybe_escalate(2000, gate_index=4)
        assert len(controller.events) == 3
        assert controller.events[0].to_bound == 1e-5

    def test_no_escalation_under_budget(self):
        controller = AdaptiveErrorController(self._config(budget=1000))
        assert not controller.maybe_escalate(500, gate_index=1)
        assert controller.is_lossless

    def test_no_budget_means_never_escalate(self):
        controller = AdaptiveErrorController(self._config(budget=None))
        assert not controller.over_budget(10**18)
        assert not controller.maybe_escalate(10**18, gate_index=1)

    def test_force_level(self):
        controller = AdaptiveErrorController(self._config())
        controller.force_level(1e-3)
        assert controller.current_bound == 1e-3
        controller.force_level(0.0)
        assert controller.is_lossless
        with pytest.raises(ValueError):
            controller.force_level(0.5)

    def test_compressor_instances_are_cached(self):
        controller = AdaptiveErrorController(self._config(start_lossless=False))
        assert controller.compressor() is controller.compressor()


class TestFidelity:
    def test_lower_bound_product(self):
        assert fidelity_lower_bound([0.0, 0.0]) == 1.0
        assert fidelity_lower_bound([1e-1, 1e-1]) == pytest.approx(0.81)

    def test_lower_bound_rejects_invalid(self):
        with pytest.raises(ValueError):
            fidelity_lower_bound([1.5])

    def test_curve_shape(self):
        curve = fidelity_curve(100, 1e-2)
        assert curve.shape == (101,)
        assert curve[0] == 1.0
        assert curve[-1] == pytest.approx((1 - 1e-2) ** 100)
        assert np.all(np.diff(curve) <= 0)

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            fidelity_curve(-1, 1e-2)
        with pytest.raises(ValueError):
            fidelity_curve(10, 1.0)

    def test_tracker_accumulates(self):
        tracker = FidelityTracker()
        tracker.record_gate(0.0)
        tracker.record_gate(1e-2)
        tracker.record_gate(1e-3)
        assert tracker.num_gates == 3
        assert tracker.num_lossy_gates == 2
        assert tracker.lower_bound == pytest.approx((1 - 1e-2) * (1 - 1e-3))
        history = tracker.history()
        assert history.shape == (3,)
        assert history[-1] == pytest.approx(tracker.lower_bound)

    def test_tracker_reset(self):
        tracker = FidelityTracker()
        tracker.record_gate(1e-1)
        tracker.reset()
        assert tracker.lower_bound == 1.0
        assert tracker.num_gates == 0

    def test_tracker_rejects_invalid_bound(self):
        tracker = FidelityTracker()
        with pytest.raises(ValueError):
            tracker.record_gate(1.0)

    def test_matches_paper_figure6_values(self):
        # Figure 6: at PWR=1e-3 after ~5000 gates the bound is ~e^-5 ≈ 0.0067;
        # at PWR=1e-5 it stays near 0.95.
        assert fidelity_lower_bound([1e-3] * 5000) == pytest.approx(
            (1 - 1e-3) ** 5000
        )
        assert fidelity_lower_bound([1e-5] * 5000) > 0.95
        assert fidelity_lower_bound([1e-1] * 100) < 1e-4


class TestSimulationReport:
    def test_time_buckets_and_breakdown(self):
        report = SimulationReport(num_qubits=4)
        report.add_time("compression", 1.0)
        report.add_time("decompression", 1.0)
        report.add_time("computation", 2.0)
        breakdown = report.breakdown()
        assert breakdown["compression"] == pytest.approx(0.25)
        assert breakdown["computation"] == pytest.approx(0.5)
        assert report.total_seconds == pytest.approx(4.0)

    def test_unknown_bucket_rejected(self):
        with pytest.raises(KeyError):
            SimulationReport().add_time("flux_capacitor", 1.0)

    def test_timer_context_manager(self):
        report = SimulationReport()
        with report.timer("computation"):
            sum(range(1000))
        assert report.computation_seconds > 0

    def test_observers(self):
        report = SimulationReport()
        report.observe_ratio(10.0)
        report.observe_ratio(3.0)
        report.observe_ratio(7.0)
        assert report.min_compression_ratio == 3.0
        report.observe_footprint(100)
        report.observe_footprint(50)
        assert report.peak_footprint_bytes == 100

    def test_seconds_per_gate(self):
        report = SimulationReport()
        report.gates_executed = 4
        report.add_time("computation", 2.0)
        assert report.seconds_per_gate == pytest.approx(0.5)

    def test_empty_breakdown_is_zero(self):
        assert SimulationReport().breakdown()["compression"] == 0.0

    def test_as_dict_and_summary(self):
        report = SimulationReport(num_qubits=8, num_ranks=2, block_amplitudes=64)
        report.gates_executed = 10
        report.add_time("compression", 0.5)
        data = report.as_dict()
        assert data["num_qubits"] == 8
        assert "compression_fraction" in data
        assert "fidelity lower bound" in report.summary()
