"""The documentation site builds clean (strict mode) as part of tier-1.

CI has a dedicated ``docs-build`` job, but building here too means a broken
docstring, nav entry or internal link fails the fast suite a developer
actually runs.  The builder is exercised the same way CI invokes it —
``--strict`` (warnings are errors) into a throwaway directory.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BUILDER = REPO_ROOT / "docs" / "build_docs.py"


@pytest.fixture(scope="module")
def build_docs():
    spec = importlib.util.spec_from_file_location("build_docs", BUILDER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_strict_build_succeeds(build_docs, tmp_path):
    assert build_docs.build(tmp_path, strict=True) == 0
    # The nav-declared pages plus the generated API reference all exist.
    for page in ("index.html", "architecture.html", "distributed.html",
                 "figures.html", "migration.html", "api/index.html",
                 "api/distributed.html", "style.css"):
        assert (tmp_path / page).exists(), page


def test_enforced_surfaces_are_fully_documented(build_docs, tmp_path):
    build_docs.build(tmp_path, strict=True)
    for page in ("api/backends.html", "api/distributed.html"):
        text = (tmp_path / page).read_text()
        assert "Undocumented" not in text, f"{page} has undocumented symbols"


def test_strict_build_catches_broken_links(build_docs, tmp_path, monkeypatch):
    reporter = build_docs.Reporter(strict=True)
    pages = {"a.html": ('<a href="missing.html">x</a>', set())}
    build_docs.check_links(pages, reporter)
    assert reporter.failed
    assert "broken internal link" in reporter.warnings[0]


def test_markdown_renderer_basics(build_docs):
    reporter = build_docs.Reporter(strict=True)
    body, anchors, title = build_docs.render_markdown(
        "# Title\n\nSome `code` and **bold**.\n\n"
        "| a | b |\n|---|---|\n| 1 | 2 |\n\n"
        "- item one\n- item two\n\n"
        "```python\nx = 1\n```\n",
        "test.md",
        reporter,
    )
    assert title == "Title"
    assert "title" in anchors
    assert "<table>" in body and "<li>" in body
    assert "<code>code</code>" in body and "<strong>bold</strong>" in body
    assert not reporter.warnings


def test_unclosed_fence_is_flagged(build_docs):
    reporter = build_docs.Reporter(strict=True)
    build_docs.render_markdown("```python\nx = 1\n", "bad.md", reporter)
    assert reporter.failed
    assert "unclosed code fence" in reporter.warnings[0]
