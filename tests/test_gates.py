"""Unit tests for repro.circuits.gates."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits import gates
from repro.circuits.gates import Gate, GateError, is_unitary, standard_gate


FIXED_GATES = ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx"]


class TestMatrices:
    @pytest.mark.parametrize("name", FIXED_GATES)
    def test_fixed_gates_are_unitary(self, name):
        assert is_unitary(gates.GATE_ALIASES[name])

    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, 2 * math.pi])
    @pytest.mark.parametrize("factory", [gates.rx, gates.ry, gates.rz, gates.phase])
    def test_parameterised_gates_are_unitary(self, factory, theta):
        assert is_unitary(factory(theta))

    def test_u3_is_unitary(self):
        assert is_unitary(gates.u3(0.3, 1.1, -0.4))

    def test_u2_is_unitary(self):
        assert is_unitary(gates.u2(0.5, 1.2))

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(gates.H @ gates.H, np.eye(2))

    def test_pauli_algebra(self):
        assert np.allclose(gates.X @ gates.Y, 1j * gates.Z)
        assert np.allclose(gates.Y @ gates.Z, 1j * gates.X)
        assert np.allclose(gates.Z @ gates.X, 1j * gates.Y)

    def test_s_is_sqrt_z(self):
        assert np.allclose(gates.S @ gates.S, gates.Z)

    def test_t_is_sqrt_s(self):
        assert np.allclose(gates.T @ gates.T, gates.S)

    def test_sx_is_sqrt_x(self):
        assert np.allclose(gates.SX @ gates.SX, gates.X)

    def test_sdg_tdg_are_adjoints(self):
        assert np.allclose(gates.SDG, gates.S.conj().T)
        assert np.allclose(gates.TDG, gates.T.conj().T)

    def test_rz_phase_relation(self):
        theta = 0.77
        # rz differs from the phase gate only by a global phase.
        ratio = gates.phase(theta) @ np.linalg.inv(gates.rz(theta))
        assert np.allclose(ratio, ratio[0, 0] * np.eye(2))

    def test_cnot_matrix_structure(self):
        cnot = gates.cnot_matrix()
        assert np.allclose(cnot @ cnot, np.eye(4))
        assert is_unitary(cnot)

    def test_toffoli_matrix_is_permutation(self):
        toffoli = gates.toffoli_matrix()
        assert is_unitary(toffoli)
        assert np.allclose(np.abs(toffoli).sum(axis=0), np.ones(8))

    def test_swap_matrix(self):
        swap = gates.swap_matrix()
        vec = np.zeros(4)
        vec[1] = 1.0  # |01>
        assert np.allclose(swap @ vec, np.eye(4)[2])  # -> |10>

    def test_controlled_wraps_unitary(self):
        cy = gates.controlled(gates.Y)
        assert np.allclose(cy[:2, :2], np.eye(2))
        assert np.allclose(cy[2:, 2:], gates.Y)

    def test_controlled_rejects_wrong_shape(self):
        with pytest.raises(GateError):
            gates.controlled(np.eye(4))

    def test_is_unitary_rejects_non_square(self):
        assert not is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_non_unitary(self):
        assert not is_unitary(np.array([[1.0, 1.0], [0.0, 1.0]]))


class TestGateRecord:
    def test_basic_construction(self):
        gate = Gate("h", gates.H, targets=(2,))
        assert gate.target == 2
        assert gate.controls == ()
        assert gate.num_qubits == 1

    def test_controlled_construction(self):
        gate = Gate("x", gates.X, targets=(0,), controls=(3, 5))
        assert gate.qubits == (3, 5, 0)
        assert gate.max_qubit() == 5
        assert gate.num_qubits == 3

    def test_rejects_non_unitary_matrix(self):
        with pytest.raises(GateError):
            Gate("bad", np.array([[1.0, 0.0], [1.0, 1.0]]), targets=(0,))

    def test_rejects_wrong_matrix_shape(self):
        with pytest.raises(GateError):
            Gate("bad", np.eye(4), targets=(0,))

    def test_rejects_multiple_targets(self):
        with pytest.raises(GateError):
            Gate("bad", gates.X, targets=(0, 1))

    def test_rejects_overlapping_control_target(self):
        with pytest.raises(GateError):
            Gate("bad", gates.X, targets=(1,), controls=(1,))

    def test_rejects_negative_qubits(self):
        with pytest.raises(GateError):
            Gate("bad", gates.X, targets=(-1,))

    def test_dagger_inverts(self):
        gate = standard_gate("t", 0)
        assert np.allclose(gate.dagger().matrix @ gate.matrix, np.eye(2))

    def test_dagger_negates_params(self):
        gate = standard_gate("rz", 0, params=(0.5,))
        assert gate.dagger().params == (-0.5,)

    def test_key_distinguishes_parameters(self):
        a = standard_gate("rz", 0, params=(0.5,))
        b = standard_gate("rz", 0, params=(0.6,))
        assert a.key() != b.key()

    def test_key_distinguishes_targets(self):
        a = standard_gate("h", 0)
        b = standard_gate("h", 1)
        assert a.key() != b.key()

    def test_key_equal_for_identical_gates(self):
        a = standard_gate("h", 0)
        b = standard_gate("h", 0)
        assert a.key() == b.key()

    def test_remapped(self):
        gate = standard_gate("x", 0, controls=(1,))
        remapped = gate.remapped({0: 5, 1: 3})
        assert remapped.targets == (5,)
        assert remapped.controls == (3,)


class TestStandardGateFactory:
    @pytest.mark.parametrize("name", FIXED_GATES)
    def test_fixed_names(self, name):
        gate = standard_gate(name, 1)
        assert gate.name == name
        assert np.allclose(gate.matrix, gates.GATE_ALIASES[name])

    def test_parameterised(self):
        gate = standard_gate("rx", 0, params=(0.4,))
        assert np.allclose(gate.matrix, gates.rx(0.4))

    def test_unknown_name(self):
        with pytest.raises(GateError):
            standard_gate("frobnicate", 0)

    def test_fixed_gate_rejects_params(self):
        with pytest.raises(GateError):
            standard_gate("h", 0, params=(1.0,))

    def test_param_gate_arity_check(self):
        with pytest.raises(GateError):
            standard_gate("u3", 0, params=(1.0,))

    def test_int_argument_forms(self):
        gate = standard_gate("x", 2, controls=1)
        assert gate.targets == (2,)
        assert gate.controls == (1,)

    def test_case_insensitive(self):
        assert standard_gate("H", 0).name == "h"
