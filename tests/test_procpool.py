"""Process-parallel execution tier: pool, executor, fan-out and picklability.

Three contracts are pinned here:

* **Bit-identity** — the process executor (fork *and* spawn), the thread
  executor and the sequential path all produce byte-identical compressed
  states: tasks write disjoint blocks, the codecs are deterministic pure
  functions, and every tier runs the same kernels on the same bytes.
* **Robustness** — a worker dying mid-plan raises a clear error instead of
  hanging, and shutdown is idempotent (``close()`` twice, context manager).
* **Cheap picklability** — every codec ships to workers as constructor
  arguments only, and a pickled codec produces and decodes byte-identical
  blobs.
"""

from __future__ import annotations

import json
import os
import pickle
import signal

import numpy as np
import pytest

import repro
from repro.applications import (
    grover_circuit,
    maxcut_observable,
    qaoa_maxcut_circuit,
    qft_benchmark_circuit,
    random_regular_graph,
)
from repro.backends import BackendError
from repro.backends.base import Backend
from repro.compression.huffman import HuffmanCodec
from repro.core import (
    CompressedSimulator,
    SimulatorConfig,
    WorkerCrashedError,
    effective_cpu_count,
)
from repro.core.procpool import SlotArena, _pack_frames, _read_frame
from repro.resilience import FaultPolicy

#: Pin for tests that assert exact failure propagation or exact cache
#: counters: an inert policy keeps them deterministic even when the suite
#: runs under a chaos fault plan (the CI chaos job).
NO_RECOVERY = FaultPolicy(max_retries=0)


def _final_state(num_qubits: int, circuit, **config_kwargs) -> np.ndarray:
    with CompressedSimulator(
        num_qubits, SimulatorConfig(num_ranks=2, block_amplitudes=16, **config_kwargs)
    ) as simulator:
        simulator.apply_circuit(circuit)
        return simulator.statevector()


# ---------------------------------------------------------------------------
# Codec picklability
# ---------------------------------------------------------------------------


class TestCodecPicklability:
    def test_pickled_codec_is_blob_bit_identical(self, codec_name, make_codec, spiky_data):
        codec = make_codec(codec_name)
        clone = pickle.loads(pickle.dumps(codec))
        blob = codec.compress(spiky_data)
        assert clone.compress(spiky_data) == blob
        assert np.array_equal(clone.decompress(blob), codec.decompress(blob))
        assert clone.describe() == codec.describe()

    def test_pickled_lossy_families_round_trip(self, compressor_name, spiky_data):
        from repro.compression import get_compressor

        codec = get_compressor(compressor_name, bound=1e-3)
        clone = pickle.loads(pickle.dumps(codec))
        assert clone.compress(spiky_data) == codec.compress(spiky_data)
        assert clone.bound == codec.bound and clone.mode is codec.mode

    def test_pickle_payload_is_constructor_sized(self, make_codec):
        # The state must stay cheap: constructor arguments, not tables.
        payload = pickle.dumps(make_codec("sz"))
        assert len(payload) < 400

    def test_huffman_codec_pickles(self):
        codec = HuffmanCodec(window_bits=11)
        clone = pickle.loads(pickle.dumps(codec))
        symbols = np.array([3, 1, 4, 1, 5, 9, 2, 6] * 64, dtype=np.int64)
        blob = codec.encode(symbols)
        assert clone.encode(symbols) == blob
        assert np.array_equal(clone.decode(blob), symbols)

    def test_fpzip_pickles_with_derived_bound(self):
        from repro.compression import get_compressor

        codec = get_compressor("fpzip", precision=22)
        clone = pickle.loads(pickle.dumps(codec))
        assert clone.bound == codec.bound
        assert clone.precision == codec.precision


# ---------------------------------------------------------------------------
# Shared-memory slot transport
# ---------------------------------------------------------------------------


class TestSlotTransport:
    def test_slot_round_trip(self):
        arena = SlotArena(slots=2, slot_bytes=64)
        try:
            refs = arena.write(1, [b"alpha", b"beta-beta"])
            assert [arena.read(ref) for ref in refs] == [b"alpha", b"beta-beta"]
        finally:
            arena.close()

    def test_oversized_payload_falls_back_inline(self):
        arena = SlotArena(slots=2, slot_bytes=8)
        try:
            assert arena.write(0, [b"x" * 9]) is None
            refs = _pack_frames(arena, 0, [b"x" * 9, b"y"])
            assert all(ref[0] == "inline" for ref in refs)
            assert _read_frame(arena, refs[0]) == b"x" * 9
        finally:
            arena.close()

    def test_no_arena_means_inline(self):
        refs = _pack_frames(None, 0, [b"payload"])
        assert refs == [("inline", b"payload")]
        assert _read_frame(None, refs[0]) == b"payload"

    def test_effective_cpu_count_positive(self):
        assert effective_cpu_count() >= 1


# ---------------------------------------------------------------------------
# Process executor: bit-identity
# ---------------------------------------------------------------------------


class TestProcessExecutorBitIdentity:
    def test_matches_sequential_and_thread_tiers(self):
        circuit = qft_benchmark_circuit(8)
        sequential = _final_state(8, circuit)
        threaded = _final_state(8, circuit, num_workers=4)
        process = _final_state(8, circuit, num_workers=2, executor="process")
        assert np.array_equal(sequential, threaded)
        assert np.array_equal(sequential, process)

    def test_codec_bound_sz_path_is_bit_identical(self):
        circuit = qft_benchmark_circuit(8)
        kwargs = dict(lossy_compressor="sz", use_block_cache=False, start_lossless=False)
        sequential = _final_state(8, circuit, **kwargs)
        process = _final_state(8, circuit, num_workers=2, executor="process", **kwargs)
        assert np.array_equal(sequential, process)

    def test_budget_escalation_is_bit_identical(self):
        # A tight budget forces mid-run escalation, so workers must pick up
        # the new compressor instances gate by gate.
        circuit = qft_benchmark_circuit(8)
        kwargs = dict(memory_budget_bytes=3_000)
        with CompressedSimulator(
            8, SimulatorConfig(num_ranks=2, block_amplitudes=16, **kwargs)
        ) as sequential_sim:
            report = sequential_sim.apply_circuit(circuit)
            sequential = sequential_sim.statevector()
        assert report.escalations > 0  # the budget must actually bite
        process = _final_state(8, circuit, num_workers=2, executor="process", **kwargs)
        assert np.array_equal(sequential, process)

    def test_cache_heavy_grover_is_bit_identical(self):
        circuit = grover_circuit(6, marked=5, iterations=2)
        sequential = _final_state(6, circuit)
        process = _final_state(6, circuit, num_workers=2, executor="process")
        assert np.array_equal(sequential, process)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_fork_and_spawn_are_bit_identical(self, start_method):
        import multiprocessing

        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        circuit = qft_benchmark_circuit(7)
        sequential = _final_state(7, circuit)
        process = _final_state(
            7,
            circuit,
            num_workers=2,
            executor="process",
            mp_start_method=start_method,
        )
        assert np.array_equal(sequential, process)

    def test_shard_cache_stats_reach_the_report(self):
        circuit = grover_circuit(6, marked=5, iterations=2)
        config = SimulatorConfig(
            num_ranks=2,
            block_amplitudes=16,
            num_workers=2,
            executor="process",
            fault_policy=NO_RECOVERY,
        )
        with CompressedSimulator(6, config) as simulator:
            report = simulator.apply_circuit(circuit)
            # One shard lookup per *dispatched* task: duplicates absorbed by
            # the parent-side wave dedupe never reach a worker, so lookups
            # are bounded by (and here strictly below) the task count.
            lookups = report.cache_hits + report.cache_misses
            assert 0 < lookups <= report.tasks_executed
            # Grover's recurring block patterns must produce shard hits.
            assert report.cache_hits > 0

    def test_disabled_shards_stop_counting_misses(self):
        # Once a shard's miss rule disables it, its lookups are free and
        # uncounted — the parent must not keep accumulating misses (the
        # sequential tier caps at the disable threshold too).
        circuit = qft_benchmark_circuit(8)
        threshold = 16
        config = SimulatorConfig(
            num_ranks=2,
            block_amplitudes=16,
            num_workers=2,
            executor="process",
            cache_miss_disable_threshold=threshold,
            fault_policy=NO_RECOVERY,
        )
        with CompressedSimulator(8, config) as simulator:
            report = simulator.apply_circuit(circuit)
            # This workload is cache-hostile (wave duplicates are absorbed
            # by the parent-side dedupe, so shards never see a repeat):
            # every shard must hit its miss cap, disable, and stop counting.
            assert report.cache_hits == 0
            assert report.cache_misses <= threshold * config.num_workers

    def test_single_worker_runs_sequentially_without_a_pool(self):
        # num_workers=1 keeps the documented sequential contract: no worker
        # processes are spawned and no task pays IPC.
        circuit = qft_benchmark_circuit(7)
        sequential = _final_state(7, circuit)
        config = SimulatorConfig(
            num_ranks=2, block_amplitudes=16, num_workers=1, executor="process"
        )
        with CompressedSimulator(7, config) as simulator:
            simulator.apply_circuit(circuit)
            assert simulator.executor.pool is None
            assert np.array_equal(sequential, simulator.statevector())

    def test_fork_helper_uses_thread_tier(self):
        config = SimulatorConfig(
            num_ranks=2, block_amplitudes=16, num_workers=2, executor="process"
        )
        with CompressedSimulator(6, config) as simulator:
            simulator.apply_circuit(qft_benchmark_circuit(6))
            clone = simulator.fork()
            try:
                assert clone.config.executor == "thread"
                assert clone.config.num_workers == 1
                assert np.array_equal(clone.statevector(), simulator.statevector())
            finally:
                clone.close()


# ---------------------------------------------------------------------------
# Process executor: lifecycle and failure paths
# ---------------------------------------------------------------------------


class TestProcessExecutorLifecycle:
    def test_close_is_idempotent(self):
        config = SimulatorConfig(
            num_ranks=2, block_amplitudes=16, num_workers=2, executor="process"
        )
        simulator = CompressedSimulator(6, config)
        simulator.apply_circuit(qft_benchmark_circuit(6))
        assert simulator.executor.pool is not None
        simulator.close()
        assert simulator.executor.pool is None
        simulator.close()  # second close must be a no-op

    def test_context_manager_closes_pool(self):
        config = SimulatorConfig(
            num_ranks=2, block_amplitudes=16, num_workers=2, executor="process"
        )
        with CompressedSimulator(6, config) as simulator:
            simulator.apply_circuit(qft_benchmark_circuit(6))
            executor = simulator.executor
        assert executor.pool is None

    def test_worker_death_raises_instead_of_hanging(self):
        config = SimulatorConfig(
            num_ranks=2,
            block_amplitudes=16,
            num_workers=2,
            executor="process",
            fault_policy=NO_RECOVERY,
        )
        with CompressedSimulator(6, config) as simulator:
            simulator.apply_circuit(qft_benchmark_circuit(6))
            pool = simulator.executor.pool
            os.kill(pool.worker_pid(0), signal.SIGKILL)
            with pytest.raises(WorkerCrashedError, match="died"):
                simulator.apply_circuit(qft_benchmark_circuit(6))

    def test_worker_exit_via_message_raises(self):
        # The "die" control message is the deterministic crash hook: the
        # worker hard-exits while the executor still expects a response.
        config = SimulatorConfig(
            num_ranks=2,
            block_amplitudes=16,
            num_workers=2,
            executor="process",
            fault_policy=NO_RECOVERY,
        )
        with CompressedSimulator(6, config) as simulator:
            simulator.apply_circuit(qft_benchmark_circuit(6))
            pool = simulator.executor.pool
            pool.submit(1, ("die",))
            with pytest.raises(WorkerCrashedError):
                pool.recv_any(timeout=30.0)

    def test_batched_reset_matches_fresh_simulators(self):
        # The warm-pool reset path: two circuits through one backend session
        # with the process executor must equal fresh, isolated runs.
        circuits = [qft_benchmark_circuit(6), grover_circuit(6, marked=5, iterations=1)]
        config = SimulatorConfig(
            num_ranks=2, block_amplitudes=16, num_workers=2, executor="process"
        )
        results = repro.run(circuits, config=config, return_statevector=True)
        for circuit, result in zip(circuits, results):
            with CompressedSimulator(6, config) as fresh:
                fresh.apply_circuit(circuit)
                assert np.array_equal(result.statevector, fresh.statevector())

    def test_invalid_executor_and_start_method_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            SimulatorConfig(executor="gpu")
        with pytest.raises(ValueError, match="mp_start_method"):
            SimulatorConfig(mp_start_method="teleport")


# ---------------------------------------------------------------------------
# Batched repro.run() fan-out
# ---------------------------------------------------------------------------


def _strip_timing(data):
    """Zero every measured-seconds field (the only legitimate difference)."""

    if isinstance(data, dict):
        return {
            key: (
                0.0
                if "seconds" in key or key.endswith("_fraction")
                else _strip_timing(value)
            )
            for key, value in data.items()
        }
    if isinstance(data, list):
        return [_strip_timing(value) for value in data]
    return data


class TestBatchFanout:
    @pytest.fixture(scope="class")
    def qaoa_batch(self):
        graph = random_regular_graph(8, degree=3, seed=5)
        circuits = [
            qaoa_maxcut_circuit(graph, [gamma], [beta])
            for gamma in (0.2, 0.4, 0.6)
            for beta in (0.4, 0.8, 1.2)
        ]
        return graph, circuits

    def test_nine_circuit_qaoa_batch_is_json_equal(self, qaoa_batch):
        """ISSUE acceptance: parallel="process" == sequential, JSON-equal.

        Every physically meaningful field — counts, expectations, report
        counters, metadata ratios — must match exactly; only measured
        wall-clock values may differ, so those are zeroed on both sides
        before comparing.
        """

        graph, circuits = qaoa_batch
        observable = maxcut_observable(graph)
        sequential = repro.run(circuits, shots=128, observables=observable, seed=11)
        parallel = repro.run(
            circuits,
            shots=128,
            observables=observable,
            seed=11,
            parallel="process",
            max_parallel=3,
        )
        assert len(parallel) == 9
        assert _strip_timing(json.loads(sequential.to_json())) == _strip_timing(
            json.loads(parallel.to_json())
        )

    def test_seed_ladder_matches_sequential_counts(self, qaoa_batch):
        _, circuits = qaoa_batch
        sequential = repro.run(circuits[:4], shots=200, seed=42)
        parallel = repro.run(
            circuits[:4], shots=200, seed=42, parallel="process", max_parallel=2
        )
        for left, right in zip(sequential, parallel):
            assert left.counts == right.counts
            assert left.metadata["seed"] == right.metadata["seed"] == 42

    def test_dense_backend_fans_out_too(self, qaoa_batch):
        _, circuits = qaoa_batch
        sequential = repro.run(circuits[:3], backend="dense", shots=50, seed=7)
        parallel = repro.run(
            circuits[:3],
            backend="dense",
            shots=50,
            seed=7,
            parallel="process",
            max_parallel=2,
        )
        for left, right in zip(sequential, parallel):
            assert left.counts == right.counts

    def test_single_circuit_skips_fanout(self, qaoa_batch):
        _, circuits = qaoa_batch
        result = repro.run(circuits[0], parallel="process", shots=10, seed=1)
        assert result.counts == repro.run(circuits[0], shots=10, seed=1).counts

    def test_max_parallel_one_still_matches(self, qaoa_batch):
        _, circuits = qaoa_batch
        sequential = repro.run(circuits[:3], seed=3, return_statevector=True)
        parallel = repro.run(
            circuits[:3],
            seed=3,
            return_statevector=True,
            parallel="process",
            max_parallel=1,
        )
        for left, right in zip(sequential, parallel):
            assert np.array_equal(left.statevector, right.statevector)

    def test_caller_supplied_comm_rejected(self, qaoa_batch):
        # Workers would mutate unpickled copies, silently zeroing the
        # caller's communicator statistics — must refuse instead.
        from repro.distributed import SimulatedCommunicator

        _, circuits = qaoa_batch
        with pytest.raises(BackendError, match="communicator"):
            repro.run(
                circuits[:2],
                parallel="process",
                comm=SimulatedCommunicator(1, bandwidth_bytes_per_s=1e9),
            )

    def test_invalid_parallel_value_rejected(self, qaoa_batch):
        _, circuits = qaoa_batch
        with pytest.raises(ValueError, match="parallel"):
            repro.run(circuits[:2], parallel="threads")

    @pytest.mark.parametrize("bad_cap", [0, -4])
    def test_non_positive_max_parallel_rejected(self, qaoa_batch, bad_cap):
        _, circuits = qaoa_batch
        with pytest.raises(ValueError, match="max_parallel"):
            repro.run(circuits[:2], parallel="process", max_parallel=bad_cap)

    def test_worker_exceptions_keep_their_type(self, qaoa_batch):
        # A failure inside _execute must surface as the same exception type
        # parallel or not: here block_amplitudes exceeds the per-rank
        # amplitudes, which only trips when the worker builds the simulator.
        _, circuits = qaoa_batch
        bad_config = SimulatorConfig(block_amplitudes=1 << 12)
        with pytest.raises(ValueError, match="block_amplitudes"):
            repro.run(circuits[:2], config=bad_config)
        with pytest.raises(ValueError, match="block_amplitudes"):
            repro.run(
                circuits[:2],
                config=bad_config,
                parallel="process",
                max_parallel=2,
            )

    def test_unregistered_backend_instance_rejected(self, qaoa_batch):
        _, circuits = qaoa_batch

        class Anonymous(Backend):
            name = "not-in-the-registry"

            def _open_session(self):  # pragma: no cover - never reached
                return None

            def _execute(self, circuit, **kwargs):  # pragma: no cover
                raise AssertionError

        with pytest.raises(BackendError, match="register"):
            repro.run(circuits[:2], backend=Anonymous(), parallel="process")
