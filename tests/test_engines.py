"""Engine registry + numpy/numba conformance differential suite.

The engine contract is *blob-for-blob bit-identity*: every engine encodes to
the same bytes and decodes to the same values as the reference NumPy engine,
including the ``CompressorError`` behaviour on malformed streams.  This file
pins that contract differentially — each case runs both engines on the same
input and compares outputs exactly.

The numba kernels are written so that, when numba is not installed, they
remain callable as plain Python (the ``njit`` stub decorator).  The
differential half of this suite therefore runs *everywhere*: with numba it
tests the JIT-compiled kernels, without it the very same kernel bodies in
interpreted mode — same control flow, same arithmetic, same status codes.
Only the constructor guard differs, so the python-mode instance is built
with ``object.__new__``.
"""

from __future__ import annotations

import pickle
import struct
import warnings

import numpy as np
import pytest

from repro.applications import qft_benchmark_circuit
from repro.compression import (
    EngineFallbackWarning,
    available_engines,
    get_compressor,
    get_engine,
    huffman,
)
from repro.compression import engines as engines_mod
from repro.compression.engines import (
    DEFAULT_ENGINE,
    KNOWN_ENGINES,
    NumpyEngine,
    engine_name,
    resolve_engine,
)
from repro.compression.engines import numba_engine as numba_engine_mod
from repro.compression.huffman import HuffmanCodec
from repro.compression.interface import CompressorError, ErrorBoundMode
from repro.compression.sz import (
    SZCompressor,
    compress_absolute_stream,
    decompress_absolute_stream,
)
from repro.core import CompressedSimulator, SimulatorConfig

#: Every registry name whose codec takes (and pickles) an ``engine=``.
ALL_CODEC_NAMES = (
    "sz",
    "sz-complex",
    "zfp",
    "xor-bitplane",
    "reshuffle",
    "lossless",
    "fpzip",
)


def _kernel_engine() -> numba_engine_mod.NumbaEngine:
    """The numba engine: JIT-compiled when numba is present, plain-Python
    kernel bodies otherwise (bypassing the constructor's numba guard)."""

    if numba_engine_mod.HAVE_NUMBA:
        return numba_engine_mod.NumbaEngine()
    return object.__new__(numba_engine_mod.NumbaEngine)


@pytest.fixture(scope="module")
def numba_impl() -> numba_engine_mod.NumbaEngine:
    return _kernel_engine()


@pytest.fixture(scope="module")
def numpy_impl() -> NumpyEngine:
    return get_engine("numpy")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_numpy_is_always_available_and_default(self):
        assert "numpy" in available_engines()
        assert DEFAULT_ENGINE == "numpy"
        assert get_engine() is get_engine("numpy")
        assert get_engine(None) is get_engine("numpy")
        assert isinstance(get_engine("numpy"), NumpyEngine)

    def test_available_engines_reflects_numba_presence(self):
        names = available_engines()
        assert ("numba" in names) == numba_engine_mod.HAVE_NUMBA
        assert set(names) <= set(KNOWN_ENGINES)

    def test_unknown_engine_rejected_everywhere(self):
        with pytest.raises(CompressorError, match="unknown codec engine"):
            get_engine("cython")
        with pytest.raises(CompressorError, match="unknown codec engine"):
            resolve_engine("cython")
        with pytest.raises(CompressorError, match="unknown codec engine"):
            engine_name("cython")
        with pytest.raises(CompressorError, match="unknown codec engine"):
            HuffmanCodec(engine="cython")
        with pytest.raises(CompressorError, match="unknown codec engine"):
            get_compressor("sz", bound=1e-3, engine="cython")
        with pytest.raises(ValueError, match="codec_engine"):
            SimulatorConfig(codec_engine="cython")

    def test_engine_name_normalisation(self, numpy_impl):
        assert engine_name(None) == "numpy"
        assert engine_name("NUMPY") == "numpy"
        assert engine_name("numba") == "numba"
        assert engine_name(numpy_impl) == "numpy"

    def test_resolve_engine_passes_instances_through(self, numpy_impl):
        assert resolve_engine(numpy_impl) is numpy_impl
        assert resolve_engine("numpy") is numpy_impl

    def test_fallback_warns_exactly_once(self, monkeypatch):
        monkeypatch.setattr(numba_engine_mod, "HAVE_NUMBA", False)
        monkeypatch.setattr(engines_mod, "_warned_fallback", False)
        monkeypatch.setattr(engines_mod, "_numba_engine", None)
        with pytest.warns(EngineFallbackWarning):
            first = get_engine("numba")
        assert isinstance(first, NumpyEngine)
        # Second resolution in the same process must stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            second = get_engine("numba")
        assert second is first

    def test_constructing_numba_engine_without_numba_raises(self, monkeypatch):
        monkeypatch.setattr(numba_engine_mod, "HAVE_NUMBA", False)
        with pytest.raises(CompressorError, match="requires the numba package"):
            numba_engine_mod.NumbaEngine()

    def test_requested_name_survives_fallback(self, monkeypatch):
        # On a host without numba the codec still *records* "numba", so the
        # pickled codec gets the real engine on a numba-capable worker.
        monkeypatch.setattr(numba_engine_mod, "HAVE_NUMBA", False)
        monkeypatch.setattr(engines_mod, "_warned_fallback", True)
        monkeypatch.setattr(engines_mod, "_numba_engine", None)
        codec = HuffmanCodec(engine="numba")
        assert codec.engine == "numba"
        assert codec.__getstate__()["engine"] == "numba"


# ---------------------------------------------------------------------------
# Differential conformance: Huffman
# ---------------------------------------------------------------------------


def _huffman_streams() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(99)
    # Doubling frequencies force a degenerate chain tree: 14 lengths up to
    # 13 bits, well past small windows, with every length populated.
    counts = 2 ** np.arange(14, dtype=np.int64)
    long_codes = np.repeat(np.arange(14, dtype=np.int64) - 7, counts)
    return {
        "random_small_alphabet": rng.integers(-4, 4, size=4096).astype(np.int64),
        "random_wide_alphabet": rng.integers(-1500, 1500, size=3000).astype(np.int64),
        "long_codes": np.random.default_rng(5).permutation(long_codes),
        "single_symbol": np.full(777, -3, dtype=np.int64),
        "two_symbols": np.array([5, -5] * 100, dtype=np.int64),
        "single_element": np.array([2**40], dtype=np.int64),
        "skewed": (rng.geometric(0.35, 5000) - rng.geometric(0.35, 5000)).astype(
            np.int64
        ),
    }


class TestHuffmanConformance:
    @pytest.mark.parametrize("stream", sorted(_huffman_streams()))
    def test_encode_bytes_and_decode_values_identical(
        self, stream, numpy_impl, numba_impl
    ):
        symbols = _huffman_streams()[stream]
        blob_np = HuffmanCodec(engine=numpy_impl).encode(symbols)
        blob_nb = HuffmanCodec(engine=numba_impl).encode(symbols)
        assert blob_np == blob_nb
        decoded = HuffmanCodec(engine=numba_impl).decode(blob_np)
        assert decoded.dtype == np.int64
        assert np.array_equal(decoded, symbols)

    def test_empty_stream(self, numpy_impl, numba_impl):
        empty = np.zeros(0, dtype=np.int64)
        blob_np = HuffmanCodec(engine=numpy_impl).encode(empty)
        blob_nb = HuffmanCodec(engine=numba_impl).encode(empty)
        assert blob_np == blob_nb
        assert HuffmanCodec(engine=numba_impl).decode(blob_np).size == 0

    def test_window_bits_never_changes_the_output(self, numba_impl):
        # window_bits is a numpy-engine tuning knob; the numba engine ignores
        # it and both must decode the long-code stream identically.
        symbols = _huffman_streams()["long_codes"]
        blob = huffman.encode(symbols)
        for window_bits in (1, 4, 16):
            for impl in (get_engine("numpy"), numba_impl):
                codec = HuffmanCodec(window_bits=window_bits, engine=impl)
                assert np.array_equal(codec.decode(blob), symbols)

    def test_exhausted_stream_error_parity(self, numpy_impl, numba_impl):
        # Inflate the symbol count in the header so the bit stream runs dry
        # mid-decode — inside the engine kernel, past the shared length check.
        symbols = np.array([0, 1] * 100, dtype=np.int64)
        blob = bytearray(huffman.encode(symbols))
        blob[0:8] = struct.pack("<Q", 201)
        for impl in (numpy_impl, numba_impl):
            with pytest.raises(CompressorError, match="exhausted"):
                HuffmanCodec(engine=impl).decode(bytes(blob))

    def test_truncated_stream_error_parity(self, numpy_impl, numba_impl):
        symbols = np.arange(-500, 500, dtype=np.int64).repeat(3)
        blob = huffman.encode(np.random.default_rng(0).permutation(symbols))
        for impl in (numpy_impl, numba_impl):
            with pytest.raises(CompressorError, match="exhausted"):
                HuffmanCodec(engine=impl).decode(blob[:-20])

    def test_incomplete_book_rejected_by_both(self, numpy_impl, numba_impl):
        # Hand-built blob whose book has three length-2 codes (00, 01, 10):
        # Kraft-consistent but incomplete, and the stream spells 11 — no code
        # matches.  Both engines must refuse (the exact message may differ:
        # the numpy wavefront reports it via its sentinel checks).
        book_blob = (
            struct.pack("<I", 3)
            + np.array([1, 2, 3], dtype="<i8").tobytes()
            + bytes([2, 2, 2])
        )
        blob = (
            struct.pack("<Q", 1)
            + struct.pack("<I", len(book_blob))
            + book_blob
            + struct.pack("<Q", 2)
            + bytes([0b11000000])
        )
        for impl in (numpy_impl, numba_impl):
            with pytest.raises(CompressorError):
                HuffmanCodec(engine=impl).decode(blob)


# ---------------------------------------------------------------------------
# Differential conformance: SZ quantize / reconstruct
# ---------------------------------------------------------------------------


def _sz_streams() -> dict[str, tuple[np.ndarray, float, int]]:
    rng = np.random.default_rng(4242)
    jumps = np.where(rng.random(4096) < 0.25, rng.normal(0.0, 1e6, 4096), 0.0)
    return {
        # (data, bound, max_bins)
        "smooth": (np.cumsum(rng.normal(0.0, 1e-3, 8192)), 1e-5, 65536),
        "escape_heavy": (
            np.cumsum(rng.normal(0.0, 1e-3, 4096)) + np.cumsum(jumps),
            1e-5,
            16,
        ),
        "all_escape": (rng.normal(0.0, 1e8, 1024), 1e-6, 4),
        "empty": (np.zeros(0), 1e-3, 65536),
        "amplitudes": (np.exp(rng.normal(-9.0, 2.0, 4096)), 1e-7, 65536),
    }


class TestSZConformance:
    @pytest.mark.parametrize("stream", sorted(_sz_streams()))
    def test_stream_bytes_and_values_identical(self, stream, numpy_impl, numba_impl):
        data, bound, max_bins = _sz_streams()[stream]
        blob_np = compress_absolute_stream(data, bound, max_bins, "zlib", 6, engine=numpy_impl)
        blob_nb = compress_absolute_stream(data, bound, max_bins, "zlib", 6, engine=numba_impl)
        assert blob_np == blob_nb
        out_np = decompress_absolute_stream(blob_np, data.size, "zlib", engine=numpy_impl)
        out_nb = decompress_absolute_stream(blob_np, data.size, "zlib", engine=numba_impl)
        # Bit identity, not closeness: compare the raw float64 bytes.
        assert out_np.tobytes() == out_nb.tobytes()
        if data.size:
            assert np.abs(out_nb - data).max() <= bound * (1 + 1e-12)

    def test_quantize_conformance(self, numpy_impl, numba_impl, rng):
        data = np.concatenate(
            [rng.normal(0.0, 1.0, 2048), [0.0, -0.0, 1e-300, -1e-300, 3.5e8]]
        )
        codes_np = numpy_impl.sz_quantize(data, 1e-4)
        codes_nb = numba_impl.sz_quantize(data, 1e-4)
        assert codes_np.dtype == codes_nb.dtype == np.int64
        assert np.array_equal(codes_np, codes_nb)

    def test_quantize_error_parity(self, numpy_impl, numba_impl):
        for impl in (numpy_impl, numba_impl):
            with pytest.raises(CompressorError, match="non-finite"):
                impl.sz_quantize(np.array([1.0, np.nan]), 1e-3)
            with pytest.raises(CompressorError, match="non-finite"):
                impl.sz_quantize(np.array([np.inf, 1.0]), 1e-3)
            with pytest.raises(CompressorError, match="overflow"):
                impl.sz_quantize(np.array([1e20]), 1e-3)
            with pytest.raises(CompressorError, match="positive"):
                impl.sz_quantize(np.array([1.0]), 0.0)
            # A code too large for float64 at all is reported as non-finite
            # (the division overflows to inf before the int64 check can see
            # it), and a stream that both overflows int64 and contains a NaN
            # reports the non-finite failure first — on every engine.
            with pytest.raises(CompressorError, match="non-finite"):
                impl.sz_quantize(np.array([1e300]), 1e-9)
            with pytest.raises(CompressorError, match="non-finite"):
                impl.sz_quantize(np.array([1e20, np.nan]), 1e-3)

    @pytest.mark.parametrize("mode", [ErrorBoundMode.ABSOLUTE, ErrorBoundMode.RELATIVE])
    def test_sz_compressor_blobs_identical(self, mode, numpy_impl, numba_impl, rng):
        data = np.exp(rng.normal(-9.0, 2.0, 4096)) * rng.choice([-1.0, 1.0], 4096)
        blob_np = SZCompressor(bound=1e-3, mode=mode, engine=numpy_impl).compress(data)
        blob_nb = SZCompressor(bound=1e-3, mode=mode, engine=numba_impl).compress(data)
        assert blob_np == blob_nb
        out_np = SZCompressor(bound=1e-3, mode=mode, engine=numpy_impl).decompress(blob_np)
        out_nb = SZCompressor(bound=1e-3, mode=mode, engine=numba_impl).decompress(blob_np)
        assert out_np.tobytes() == out_nb.tobytes()


# ---------------------------------------------------------------------------
# Differential conformance: bitfield packing + leading-zero coding
# ---------------------------------------------------------------------------


class TestPackingConformance:
    def test_pack_bitfields_identical(self, numpy_impl, numba_impl, rng):
        widths = rng.integers(1, 64, size=3000).astype(np.int64)
        values = rng.integers(0, 2**62, size=3000).astype(np.uint64) & (
            (np.uint64(1) << widths.astype(np.uint64)) - np.uint64(1)
        )
        packed_np, bits_np = numpy_impl.pack_bitfields(values, widths)
        packed_nb, bits_nb = numba_impl.pack_bitfields(values, widths)
        assert bits_np == bits_nb
        assert packed_np.tobytes() == packed_nb.tobytes()

    def test_pack_bitfields_empty_and_errors(self, numpy_impl, numba_impl):
        for impl in (numpy_impl, numba_impl):
            packed, total = impl.pack_bitfields(
                np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
            )
            assert total == 0 and packed.size == 0
            with pytest.raises(ValueError, match="matching 1-D"):
                impl.pack_bitfields(
                    np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=np.int64)
                )

    @pytest.mark.parametrize("keep_bytes", [1, 3, 5, 8])
    def test_leading_zero_round_trip_identical(
        self, keep_bytes, numpy_impl, numba_impl, rng
    ):
        # Words with realistic leading-zero distribution: shift a fraction of
        # them right so the 2-bit code histogram covers all four codes.
        words = rng.integers(0, 2**63, size=4096, dtype=np.int64).astype(np.uint64)
        shifts = rng.integers(0, 5, size=4096).astype(np.uint64) * np.uint64(8)
        words >>= shifts
        words[::97] = 0  # all-zero words hit the clamp path
        packed_np, suffix_np = numpy_impl.pack_leading_zero(words, keep_bytes)
        packed_nb, suffix_nb = numba_impl.pack_leading_zero(words, keep_bytes)
        assert packed_np == packed_nb
        assert suffix_np == suffix_nb
        out_np = numpy_impl.unpack_leading_zero(
            packed_np, suffix_np, words.size, keep_bytes
        )
        out_nb = numba_impl.unpack_leading_zero(
            packed_np, suffix_np, words.size, keep_bytes
        )
        assert out_np.tobytes() == out_nb.tobytes()

    def test_leading_zero_empty_and_errors(self, numpy_impl, numba_impl, rng):
        words = rng.integers(0, 2**20, size=64).astype(np.uint64)
        for impl in (numpy_impl, numba_impl):
            assert impl.pack_leading_zero(np.zeros(0, dtype=np.uint64), 8) == (b"", b"")
            assert impl.unpack_leading_zero(b"", b"", 0, 8).size == 0
            with pytest.raises(CompressorError, match="keep_bytes"):
                impl.pack_leading_zero(words, 9)
            packed, suffix = impl.pack_leading_zero(words, 8)
            with pytest.raises(CompressorError, match="suffix stream has"):
                impl.unpack_leading_zero(packed, suffix + b"\x00", words.size, 8)


# ---------------------------------------------------------------------------
# Golden blobs + whole-codec identity under the numba engine
# ---------------------------------------------------------------------------


class TestWholeCodecConformance:
    @pytest.mark.parametrize("name", ["sz", "sz-complex", "zfp", "xor-bitplane", "reshuffle"])
    def test_lossy_codec_blobs_identical(self, name, numpy_impl, numba_impl, spiky_data):
        codec_np = get_compressor(name, bound=1e-3, engine=numpy_impl)
        codec_nb = get_compressor(name, bound=1e-3, engine=numba_impl)
        blob = codec_np.compress(spiky_data)
        assert codec_nb.compress(spiky_data) == blob
        assert (
            codec_np.decompress(blob).tobytes() == codec_nb.decompress(blob).tobytes()
        )

    def test_golden_blobs_decode_identically(self, numba_impl):
        # Same fixture set test_golden_blobs.py pins for the numpy engine.
        from pathlib import Path

        golden_dir = Path(__file__).parent / "golden"
        decoder_for = {
            "huffman": None,
            "sz": "sz",
            "zfp": "zfp",
            "xor": "xor-bitplane",
            "lossless": "lossless",
        }
        cases = sorted(p.stem for p in golden_dir.glob("*.blob"))
        assert cases
        for case in cases:
            blob = (golden_dir / f"{case}.blob").read_bytes()
            expected = np.load(golden_dir / f"{case}.expected.npy")
            name = decoder_for[case.split("_")[0]]
            if name is None:
                decoded = HuffmanCodec(engine=numba_impl).decode(blob)
            else:
                codec = get_compressor(
                    name, engine=numba_impl, **({} if name == "lossless" else {"bound": 1e-3})
                )
                decoded = codec.decompress(blob)
            assert np.array_equal(decoded, expected), case


# ---------------------------------------------------------------------------
# Config plumbing, pickling, and the distributed path
# ---------------------------------------------------------------------------


class TestEnginePlumbing:
    @pytest.mark.parametrize("name", ALL_CODEC_NAMES)
    def test_every_codec_records_and_pickles_its_engine(self, name, engine):
        # fpzip is precision-parametrized, lossless is bound-free; every
        # other codec takes an error bound.
        kwargs = {} if name in ("lossless", "fpzip") else {"bound": 1e-3}
        codec = get_compressor(name, engine=engine, **kwargs)
        assert codec.engine == engine
        clone = pickle.loads(pickle.dumps(codec))
        assert clone.engine == engine

    def test_engine_defaults_to_numpy(self):
        assert get_compressor("sz", bound=1e-3).engine == "numpy"
        assert SimulatorConfig().codec_engine == "numpy"

    def test_config_engine_reaches_the_compressors(self, engine):
        config = SimulatorConfig(
            num_ranks=2, block_amplitudes=16, codec_engine=engine
        )
        with CompressedSimulator(5, config) as simulator:
            assert simulator.controller.lossless_compressor().engine == engine
            simulator.controller.force_level(config.error_levels[0])
            assert simulator.controller.compressor().engine == engine

    def test_checkpoint_preserves_codec_engine(self, engine, tmp_path):
        from repro.core.checkpoint import load_checkpoint, save_checkpoint

        config = SimulatorConfig(num_ranks=2, block_amplitudes=16, codec_engine=engine)
        with CompressedSimulator(5, config) as simulator:
            simulator.apply_circuit(qft_benchmark_circuit(5))
            path = tmp_path / "engine.ckpt"
            save_checkpoint(simulator, path)
        restored = load_checkpoint(path)
        try:
            assert restored.config.codec_engine == engine
        finally:
            restored.close()

    def test_process_executor_bit_identical_across_engines(self, engine):
        # The engine rides to process workers inside pickled codecs; the
        # distributed result must match the sequential numpy-engine result
        # byte for byte (the engines are bit-identical, so mixing tiers and
        # engines can never change the state).
        circuit = qft_benchmark_circuit(6)

        def final_state(**kwargs):
            config = SimulatorConfig(num_ranks=2, block_amplitudes=16, **kwargs)
            with CompressedSimulator(6, config) as simulator:
                simulator.apply_circuit(circuit)
                return simulator.statevector()

        sequential = final_state(codec_engine="numpy")
        process = final_state(
            codec_engine=engine, executor="process", num_workers=2
        )
        assert sequential.tobytes() == process.tobytes()
