"""Tier-1 gate: the repository lints clean under its own rule engine.

This is the self-hosting check the CI ``lint`` job enforces: every rule in
the catalog active, zero non-suppressed diagnostics, and every suppression
in the tree carrying a reason.  A failure here means a commit introduced a
contract violation (or an unreasoned suppression) somewhere in the linted
scope.
"""

from __future__ import annotations

from repro.tools.lint import all_rules, lint_paths
from repro.tools.lint.config import project_config


def test_repository_lints_clean():
    config = project_config()
    report = lint_paths(config.default_paths(), config)
    rendered = "\n".join(d.render() for d in report.diagnostics[:25])
    assert report.exit_code == 0, f"repository must lint clean:\n{rendered}"
    assert report.files_checked > 100  # the walk really covered the tree


def test_rule_catalog_has_at_least_eight_active_rules():
    config = project_config()
    report = lint_paths(config.default_paths(), config)
    assert len(report.rules_active) >= 8
    assert set(report.rules_active) == set(all_rules())


def test_every_suppression_in_tree_is_reasoned():
    # The engine drops reasonless suppressions and flags them, so a clean
    # report plus non-empty suppressed list proves each carries a reason.
    config = project_config()
    report = lint_paths(config.default_paths(), config)
    assert all(d.rule != "suppression-format" for d in report.diagnostics)
    assert len(report.suppressed) >= 1  # the sanctioned swallows in procpool
