"""Fusion pass + parallel block-task execution: unit and differential tests.

The differential harness is the safety net for the gate-fusion / scheduling
refactor: random circuits run through the compressed simulator with fusion
on/off and ``num_workers`` 1/4 must agree with the dense reference —
amplitude for amplitude under lossless compression, and within the tracked
fidelity lower bound under every lossy compressor family.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    QuantumCircuit,
    fuse_circuit,
    fuse_gate_sequence,
    fuse_run,
    fusible,
    ghz_circuit,
    qft_circuit,
    standard_gate,
)
from repro.circuits.gates import GateError
from repro.compression.interface import get_compressor
from repro.core import BlockCache, CompressedSimulator
from repro.distributed import Partition, plan_fused_group, plan_gate
from repro.statevector import simulate_statevector

NUM_QUBITS = 6

_single_gates = ("h", "x", "y", "z", "s", "t", "sx")


def _chain_circuit(num_qubits: int = 4) -> QuantumCircuit:
    """Consecutive same-target chains interleaved with entanglers."""

    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):
        circuit.h(qubit).t(qubit).rz(0.3 * (qubit + 1), qubit).s(qubit)
    for qubit in range(num_qubits - 1):
        circuit.cp(0.5, qubit, qubit + 1)
    return circuit


@st.composite
def fusion_heavy_circuits(draw) -> QuantumCircuit:
    """Random circuits biased toward fusible same-target runs."""

    circuit = QuantumCircuit(NUM_QUBITS)
    num_moves = draw(st.integers(min_value=1, max_value=12))
    for _ in range(num_moves):
        kind = draw(st.integers(min_value=0, max_value=3))
        qubits = draw(st.permutations(range(NUM_QUBITS)).map(lambda p: p[:3]))
        if kind == 0:
            # A run of gates on one target — what the fusion pass coalesces.
            for _ in range(draw(st.integers(min_value=1, max_value=4))):
                circuit.add(draw(st.sampled_from(_single_gates)), qubits[0])
        elif kind == 1:
            theta = draw(st.floats(-3.14, 3.14, allow_nan=False))
            circuit.rz(theta, qubits[0])
        elif kind == 2:
            circuit.cx(qubits[0], qubits[1])
        else:
            circuit.ccx(qubits[0], qubits[1], qubits[2])
    return circuit


# ---------------------------------------------------------------------------
# Fusion pass unit tests
# ---------------------------------------------------------------------------


class TestFusionPass:
    def test_fused_matrix_is_product_in_application_order(self):
        h = standard_gate("h", 0)
        t = standard_gate("t", 0)
        s = standard_gate("s", 0)
        fused = fuse_run([h, t, s])
        assert np.allclose(fused.matrix, s.matrix @ t.matrix @ h.matrix)
        assert fused.targets == (0,)
        assert fused.controls == ()

    def test_single_gate_run_is_returned_unchanged(self):
        gate = standard_gate("h", 2)
        assert fuse_run([gate]) is gate

    def test_fusible_requires_same_target_and_control_set(self):
        assert fusible(standard_gate("h", 0), standard_gate("t", 0))
        assert not fusible(standard_gate("h", 0), standard_gate("h", 1))
        assert not fusible(standard_gate("x", 0, controls=(1,)), standard_gate("x", 0))
        # Control order is irrelevant: the condition is a set membership test.
        assert fusible(
            standard_gate("x", 0, controls=(1, 2)), standard_gate("z", 0, controls=(2, 1))
        )

    def test_fuse_run_rejects_unfusible_and_empty(self):
        with pytest.raises(GateError):
            fuse_run([standard_gate("h", 0), standard_gate("h", 1)])
        with pytest.raises(GateError):
            fuse_run([])

    def test_fuse_circuit_statistics(self):
        circuit = _chain_circuit(4)  # 4 chains of 4 + 3 entanglers
        fused, stats = fuse_circuit(circuit)
        assert stats.gates_in == 19
        assert stats.gates_out == 7
        assert stats.fused_groups == 4
        assert stats.max_group == 4
        assert stats.round_trip_reduction > 2.0
        assert len(fused) == stats.gates_out

    def test_nothing_to_fuse_preserves_gates(self):
        circuit = QuantumCircuit(3).h(0).h(1).h(2).cx(0, 1)
        fused, stats = fuse_circuit(circuit)
        assert stats.fused_groups == 0
        assert stats.round_trip_reduction == 1.0
        assert fused.gates == circuit.gates

    def test_max_group_caps_run_length(self):
        gates = [standard_gate("t", 0) for _ in range(7)]
        fused, stats = fuse_gate_sequence(gates, max_group=3)
        assert [len(g.name.split("+")) if g.name.startswith("fused") else 1 for g in fused] == [3, 3, 1]
        assert stats.gates_out == 3
        assert stats.max_group == 3

    def test_fused_circuit_operator_equivalence(self):
        circuit = _chain_circuit(4)
        fused, _ = fuse_circuit(circuit)
        assert np.allclose(
            simulate_statevector(circuit), simulate_statevector(fused), atol=1e-12
        )


# ---------------------------------------------------------------------------
# Planning: fused groups and task independence
# ---------------------------------------------------------------------------


class TestFusedPlanning:
    @pytest.mark.parametrize("target", [0, 3, 5])  # local / block / rank segment
    def test_plan_fused_group_matches_single_gate_plan(self, target):
        partition = Partition(num_qubits=6, num_ranks=4, block_amplitudes=4)
        gates = [standard_gate("h", target), standard_gate("t", target)]
        fused, plan = plan_fused_group(partition, gates)
        assert plan == plan_gate(partition, fused)
        # One plan for the whole run — the same tasks a single gate would get.
        assert plan.tasks == plan_gate(partition, gates[0]).tasks

    @pytest.mark.parametrize("target", [0, 3, 5])
    def test_independent_groups_cover_and_are_disjoint(self, target):
        partition = Partition(num_qubits=6, num_ranks=4, block_amplitudes=4)
        plan = plan_gate(partition, standard_gate("h", target))
        waves = plan.independent_groups()
        seen: list = []
        for wave in waves:
            used: set = set()
            for task in wave:
                assert not used & set(task.buffers)
                used |= set(task.buffers)
            seen.extend(wave)
        # Single-gate plans touch every block exactly once: one wave.
        assert len(waves) == 1
        assert tuple(seen) == plan.tasks


# ---------------------------------------------------------------------------
# Differential tests against the dense simulator
# ---------------------------------------------------------------------------


class TestFusionDefault:
    """Fusion is on by default (ROADMAP flip); the opt-out stays explicit."""

    def test_default_config_enables_fusion(self):
        from repro.core import SimulatorConfig

        assert SimulatorConfig().fusion_enabled is True

    def test_opt_out_restores_seed_gate_accounting(self, simulator_config):
        circuit = _chain_circuit(NUM_QUBITS)
        with CompressedSimulator(
            NUM_QUBITS, simulator_config(fusion_enabled=False)
        ) as seed_path:
            seed_report = seed_path.apply_circuit(circuit)
        with CompressedSimulator(NUM_QUBITS, simulator_config()) as fused_path:
            fused_report = fused_path.apply_circuit(circuit)
        # Opt-out: one executed gate (and one round trip) per source gate.
        assert seed_report.gates_executed == len(circuit)
        assert seed_report.fusion_gates_in == 0
        # Default: the same-target chains collapse, fewer round trips.
        assert fused_report.fusion_gates_in == len(circuit)
        assert fused_report.gates_executed < len(circuit)
        assert fused_report.compress_calls < seed_report.compress_calls


class TestDifferentialLossless:
    @given(circuit=fusion_heavy_circuits())
    @settings(max_examples=12, deadline=None)
    @pytest.mark.parametrize("fusion", [False, True])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_matches_dense(self, circuit, fusion, workers, simulator_config):
        config = simulator_config(
            num_ranks=2, block_amplitudes=8, fusion_enabled=fusion, num_workers=workers
        )
        with CompressedSimulator(NUM_QUBITS, config) as simulator:
            simulator.apply_circuit(circuit)
            dense = simulate_statevector(circuit)
            assert np.allclose(simulator.statevector(), dense, atol=1e-10)
            assert simulator.norm_squared() == pytest.approx(1.0, abs=1e-9)

    def test_worker_count_is_bit_identical_and_fusion_is_allclose(self, simulator_config):
        # num_workers cannot change the stored state at all (disjoint block
        # writes, deterministic compressors); fusion reorders floating-point
        # arithmetic, so across fusion settings agreement is to tolerance.
        circuit = _chain_circuit(NUM_QUBITS)
        states: dict[tuple[bool, int], np.ndarray] = {}
        for fusion in (False, True):
            for workers in (1, 4):
                config = simulator_config(
                    num_ranks=2,
                    block_amplitudes=8,
                    fusion_enabled=fusion,
                    num_workers=workers,
                )
                with CompressedSimulator(NUM_QUBITS, config) as simulator:
                    simulator.apply_circuit(circuit)
                    states[fusion, workers] = simulator.statevector()
        for fusion in (False, True):
            assert np.array_equal(states[fusion, 1], states[fusion, 4])
        assert np.allclose(states[False, 1], states[True, 1], atol=1e-12)


class TestDifferentialLossy:
    @given(circuit=fusion_heavy_circuits())
    @settings(max_examples=6, deadline=None)
    def test_within_fidelity_bound_across_compressors(
        self, circuit, compressor_name, simulator_config
    ):
        for fusion, workers in ((False, 1), (True, 4)):
            config = simulator_config(
                num_ranks=2,
                block_amplitudes=16,
                start_lossless=False,
                lossy_compressor=compressor_name,
                error_levels=(1e-3,),
                fusion_enabled=fusion,
                num_workers=workers,
            )
            with CompressedSimulator(NUM_QUBITS, config) as simulator:
                report = simulator.apply_circuit(circuit)
                dense = simulate_statevector(circuit)
                fidelity = simulator.fidelity_vs(dense)
                assert fidelity >= report.fidelity_lower_bound - 1e-12

    def test_fusion_tightens_lossy_fidelity_bound(self, simulator_config):
        # Fewer executed gates = fewer lossy recompressions = a tighter
        # Π(1 - δ) bound.  The measured fidelity must respect both bounds.
        circuit = _chain_circuit(NUM_QUBITS)
        bounds = {}
        for fusion in (False, True):
            config = simulator_config(
                num_ranks=1,
                block_amplitudes=16,
                start_lossless=False,
                error_levels=(1e-3,),
                fusion_enabled=fusion,
            )
            with CompressedSimulator(NUM_QUBITS, config) as simulator:
                report = simulator.apply_circuit(circuit)
                bounds[fusion] = report.fidelity_lower_bound
        assert bounds[True] > bounds[False]


# ---------------------------------------------------------------------------
# Round-trip accounting
# ---------------------------------------------------------------------------


class TestRoundTripAccounting:
    def test_fusion_reduces_compressor_invocations(self, simulator_config):
        circuit = _chain_circuit(NUM_QUBITS)
        calls = {}
        for fusion in (False, True):
            config = simulator_config(
                num_ranks=2,
                block_amplitudes=8,
                use_block_cache=False,
                fusion_enabled=fusion,
            )
            with CompressedSimulator(NUM_QUBITS, config) as simulator:
                report = simulator.apply_circuit(circuit)
                calls[fusion] = report.compress_calls
                assert report.compress_calls == report.decompress_calls
        assert calls[False] >= 2 * calls[True]

    def test_fusion_report_fields(self, simulator_config):
        circuit = _chain_circuit(NUM_QUBITS)
        config = simulator_config(num_ranks=1, block_amplitudes=16, fusion_enabled=True)
        with CompressedSimulator(NUM_QUBITS, config) as simulator:
            report = simulator.apply_circuit(circuit)
        assert report.fusion_gates_in == len(circuit)
        assert report.fusion_gates_out == report.gates_executed
        assert report.fusion_gates_out < report.fusion_gates_in
        assert report.tasks_executed > 0


# ---------------------------------------------------------------------------
# sample_counts determinism (regression: pinned block iteration order)
# ---------------------------------------------------------------------------


class TestSampleCountsDeterminism:
    def test_identical_counts_across_runs(self, simulator_config):
        config = simulator_config(num_ranks=2, block_amplitudes=16)
        simulator = CompressedSimulator(8, config)
        simulator.apply_circuit(qft_circuit(8))
        first = simulator.sample_counts(500, np.random.default_rng(99))
        second = simulator.sample_counts(500, np.random.default_rng(99))
        assert first == second

    @pytest.mark.parametrize("fusion", [False, True])
    def test_identical_counts_across_num_workers(self, fusion, simulator_config):
        # num_workers cannot change the stored blocks (disjoint writes,
        # deterministic compressors), so within one fusion setting a seeded
        # generator must yield the same counts for any worker count.  Fusion
        # itself reorders floating-point arithmetic, so counts are only
        # pinned within a fusion setting, not across them.
        counts = {}
        for workers in (1, 4):
            config = simulator_config(
                num_ranks=2, block_amplitudes=16, fusion_enabled=fusion, num_workers=workers
            )
            with CompressedSimulator(8, config) as simulator:
                simulator.apply_circuit(qft_circuit(8))
                counts[workers] = simulator.sample_counts(300, np.random.default_rng(7))
        assert counts[1] == counts[4]


# ---------------------------------------------------------------------------
# Block cache under fused op-keys
# ---------------------------------------------------------------------------


class TestCacheWithFusedOpKeys:
    def _op_key(self, gate, compressor) -> tuple:
        return gate.key() + (compressor.describe(),)

    def test_fused_group_and_constituents_use_distinct_lines(self):
        compressor = get_compressor("lossless")
        h = standard_gate("h", 0)
        t = standard_gate("t", 0)
        fused = fuse_run([h, t])
        blob = b"compressed-block"
        cache = BlockCache(lines=8, miss_disable_threshold=None)

        cache.insert(self._op_key(fused, compressor), blob, None, b"fused-out", None)
        # Neither constituent may alias the fused line (or each other).
        assert cache.lookup(self._op_key(h, compressor), blob, None) is None
        assert cache.lookup(self._op_key(t, compressor), blob, None) is None
        assert cache.lookup(self._op_key(fused, compressor), blob, None) == (
            b"fused-out",
            None,
        )
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.insertions == 1

    def test_two_fused_groups_with_same_name_but_different_matrices(self):
        compressor = get_compressor("lossless")
        group_a = fuse_run([standard_gate("rz", 0, params=(0.1,)), standard_gate("h", 0)])
        group_b = fuse_run([standard_gate("rz", 0, params=(0.2,)), standard_gate("h", 0)])
        assert group_a.name == group_b.name
        cache = BlockCache(lines=8, miss_disable_threshold=None)
        blob = b"block"
        cache.insert(self._op_key(group_a, compressor), blob, None, b"out-a", None)
        # Same mnemonic, different fused matrix: must miss.
        assert cache.lookup(self._op_key(group_b, compressor), blob, None) is None

    def test_hit_miss_accounting_with_fusion_enabled(self, simulator_config):
        # GHZ keeps blocks identical.  Sequentially that redundancy shows up
        # as cache hits; with workers > 1 the executor dedupes identical
        # tasks per wave instead, so hits may drop but the compressor work
        # must not grow.  In both modes the report's accounting must mirror
        # the cache's own counters.
        reports = {}
        for workers in (1, 4):
            config = simulator_config(
                num_ranks=2, block_amplitudes=16, fusion_enabled=True, num_workers=workers
            )
            with CompressedSimulator(8, config) as simulator:
                report = simulator.apply_circuit(ghz_circuit(8))
                cache = simulator.cache
                assert cache is not None
                assert cache.stats.hits == report.cache_hits
                assert cache.stats.misses == report.cache_misses
                assert cache.stats.lookups == report.cache_hits + report.cache_misses
                reports[workers] = report
        assert reports[1].cache_hits > 0
        assert reports[4].compress_calls <= reports[1].compress_calls
        assert reports[4].tasks_executed == reports[1].tasks_executed
