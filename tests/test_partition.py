"""Unit tests for the rank/block partition (Figure 3 index arithmetic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import Partition, QubitSegment


class TestConstruction:
    def test_basic_properties(self):
        partition = Partition(num_qubits=10, num_ranks=4, block_amplitudes=64)
        assert partition.total_amplitudes == 1024
        assert partition.amplitudes_per_rank == 256
        assert partition.blocks_per_rank == 4
        assert partition.total_blocks == 16
        assert partition.offset_bits == 6
        assert partition.block_bits == 2
        assert partition.rank_bits == 2
        assert partition.block_bytes == 64 * 16
        assert partition.uncompressed_bytes() == 1024 * 16

    def test_single_rank_single_block(self):
        partition = Partition(num_qubits=4, num_ranks=1, block_amplitudes=16)
        assert partition.blocks_per_rank == 1
        assert partition.rank_bits == 0
        assert partition.block_bits == 0

    def test_non_power_of_two_ranks_rejected(self):
        with pytest.raises(ValueError):
            Partition(num_qubits=8, num_ranks=3, block_amplitudes=16)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValueError):
            Partition(num_qubits=8, num_ranks=2, block_amplitudes=24)

    def test_block_larger_than_rank_slice_rejected(self):
        with pytest.raises(ValueError):
            Partition(num_qubits=6, num_ranks=4, block_amplitudes=32)

    def test_more_ranks_than_amplitudes_rejected(self):
        with pytest.raises(ValueError):
            Partition(num_qubits=2, num_ranks=8, block_amplitudes=1)

    def test_describe_mentions_geometry(self):
        text = Partition(8, 2, 32).describe()
        assert "8 qubits" in text and "2 rank" in text


class TestSegmentClassification:
    def test_segments_follow_figure3(self):
        # 10 qubits, 4 ranks, 64-amplitude blocks:
        # offsets = bits 0-5, block index = bits 6-7, rank = bits 8-9.
        partition = Partition(num_qubits=10, num_ranks=4, block_amplitudes=64)
        for qubit in range(6):
            assert partition.segment_of(qubit) is QubitSegment.LOCAL
        for qubit in (6, 7):
            assert partition.segment_of(qubit) is QubitSegment.BLOCK
        for qubit in (8, 9):
            assert partition.segment_of(qubit) is QubitSegment.RANK

    def test_all_local_when_single_block_single_rank(self):
        partition = Partition(num_qubits=5, num_ranks=1, block_amplitudes=32)
        assert all(
            partition.segment_of(q) is QubitSegment.LOCAL for q in range(5)
        )

    def test_bit_position_helpers(self):
        partition = Partition(num_qubits=10, num_ranks=4, block_amplitudes=64)
        assert partition.local_bit(3) == 3
        assert partition.block_bit(6) == 0
        assert partition.block_bit(7) == 1
        assert partition.rank_bit(8) == 0
        assert partition.rank_bit(9) == 1

    def test_bit_position_helpers_reject_wrong_segment(self):
        partition = Partition(num_qubits=10, num_ranks=4, block_amplitudes=64)
        with pytest.raises(ValueError):
            partition.local_bit(7)
        with pytest.raises(ValueError):
            partition.block_bit(2)
        with pytest.raises(ValueError):
            partition.rank_bit(6)

    def test_out_of_range_qubit(self):
        partition = Partition(num_qubits=10, num_ranks=4, block_amplitudes=64)
        with pytest.raises(ValueError):
            partition.segment_of(10)


class TestIndexArithmetic:
    def test_global_index_and_locate_are_inverses(self):
        partition = Partition(num_qubits=9, num_ranks=2, block_amplitudes=32)
        for global_index in range(partition.total_amplitudes):
            rank, block, offset = partition.locate(global_index)
            assert partition.global_index(rank, block, offset) == global_index

    def test_locate_bounds(self):
        partition = Partition(num_qubits=6, num_ranks=2, block_amplitudes=8)
        with pytest.raises(ValueError):
            partition.locate(64)
        with pytest.raises(ValueError):
            partition.global_index(2, 0, 0)
        with pytest.raises(ValueError):
            partition.global_index(0, 99, 0)
        with pytest.raises(ValueError):
            partition.global_index(0, 0, 8)

    def test_rank_of_matches_contiguous_layout(self):
        partition = Partition(num_qubits=6, num_ranks=4, block_amplitudes=4)
        # Rank k owns global indices [k*16, (k+1)*16).
        for global_index in range(64):
            assert partition.rank_of(global_index) == global_index // 16


class TestPairEnumeration:
    def test_block_pairs_cover_all_blocks_once(self):
        partition = Partition(num_qubits=10, num_ranks=2, block_amplitudes=32)
        for qubit in (5, 6, 7, 8):  # block-segment qubits
            if partition.segment_of(qubit) is not QubitSegment.BLOCK:
                continue
            pairs = partition.block_pairs(qubit)
            flattened = [b for pair in pairs for b in pair]
            assert sorted(flattened) == list(range(partition.blocks_per_rank))
            bit = 1 << partition.block_bit(qubit)
            for b0, b1 in pairs:
                assert b1 == b0 | bit
                assert not b0 & bit

    def test_rank_pairs_cover_all_ranks_once(self):
        partition = Partition(num_qubits=10, num_ranks=8, block_amplitudes=16)
        for qubit in (7, 8, 9):
            pairs = partition.rank_pairs(qubit)
            flattened = [r for pair in pairs for r in pair]
            assert sorted(flattened) == list(range(8))

    def test_pair_global_indices_differ_only_in_target_bit(self):
        partition = Partition(num_qubits=9, num_ranks=4, block_amplitudes=16)
        qubit = 7  # a rank-segment qubit (rank bits are 7, 8)
        assert partition.segment_of(qubit) is QubitSegment.RANK
        for rank0, rank1 in partition.rank_pairs(qubit):
            for block in range(partition.blocks_per_rank):
                for offset in (0, 5, 15):
                    i0 = partition.global_index(rank0, block, offset)
                    i1 = partition.global_index(rank1, block, offset)
                    assert i1 == i0 | (1 << qubit)
