"""Unit tests for repro.statevector.measurement."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.statevector import measurement


@pytest.fixture
def bell_state() -> np.ndarray:
    state = np.zeros(4, dtype=complex)
    state[0b00] = state[0b11] = 1 / math.sqrt(2)
    return state


class TestProbabilities:
    def test_probabilities_sum_to_one(self, bell_state):
        probs = measurement.probabilities(bell_state)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] == pytest.approx(0.5)

    def test_norm_error(self, bell_state):
        assert measurement.norm_error(bell_state) == pytest.approx(0.0, abs=1e-12)
        assert measurement.norm_error(2 * bell_state) == pytest.approx(3.0)

    def test_normalize(self):
        state = np.array([3.0, 4.0], dtype=complex)
        normalized = measurement.normalize(state)
        assert np.linalg.norm(normalized) == pytest.approx(1.0)

    def test_normalize_zero_state(self):
        zero = np.zeros(4, dtype=complex)
        assert np.allclose(measurement.normalize(zero), zero)

    def test_marginal_probability(self, bell_state):
        assert measurement.marginal_probability(bell_state, 0) == pytest.approx(0.5)
        assert measurement.marginal_probability(bell_state, 1) == pytest.approx(0.5)

    def test_marginal_probability_basis_state(self):
        state = np.zeros(8, dtype=complex)
        state[0b101] = 1.0
        assert measurement.marginal_probability(state, 0) == pytest.approx(1.0)
        assert measurement.marginal_probability(state, 1) == pytest.approx(0.0)
        assert measurement.marginal_probability(state, 2) == pytest.approx(1.0)

    def test_marginal_probability_bad_qubit(self, bell_state):
        with pytest.raises(ValueError):
            measurement.marginal_probability(bell_state, 2)

    def test_expectation_z(self):
        state = np.zeros(2, dtype=complex)
        state[0] = 1.0
        assert measurement.expectation_z(state, 0) == pytest.approx(1.0)
        state = np.zeros(2, dtype=complex)
        state[1] = 1.0
        assert measurement.expectation_z(state, 0) == pytest.approx(-1.0)


class TestSampling:
    def test_sample_counts_total(self, bell_state, rng):
        counts = measurement.sample_counts(bell_state, 1000, rng)
        assert sum(counts.values()) == 1000
        assert set(counts) <= {0b00, 0b11}

    def test_sample_counts_distribution(self, rng):
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0
        counts = measurement.sample_counts(state, 50, rng)
        assert counts == {2: 50}

    def test_sample_zero_shots(self, bell_state, rng):
        assert measurement.sample_counts(bell_state, 0, rng) == {}

    def test_sample_negative_shots(self, bell_state, rng):
        with pytest.raises(ValueError):
            measurement.sample_counts(bell_state, -1, rng)

    def test_sample_zero_state_rejected(self, rng):
        with pytest.raises(ValueError):
            measurement.sample_counts(np.zeros(4, dtype=complex), 10, rng)


class TestCollapse:
    def test_collapse_bell_state(self, bell_state):
        collapsed = measurement.collapse_qubit(bell_state, 0, 0)
        assert np.abs(collapsed[0b00]) == pytest.approx(1.0)
        collapsed = measurement.collapse_qubit(bell_state, 0, 1)
        assert np.abs(collapsed[0b11]) == pytest.approx(1.0)

    def test_collapse_impossible_outcome(self):
        state = np.zeros(2, dtype=complex)
        state[0] = 1.0
        with pytest.raises(ValueError):
            measurement.collapse_qubit(state, 0, 1)

    def test_collapse_invalid_outcome_value(self, bell_state):
        with pytest.raises(ValueError):
            measurement.collapse_qubit(bell_state, 0, 2)

    def test_measure_qubit_is_consistent(self, bell_state, rng):
        outcome, collapsed = measurement.measure_qubit(bell_state, 1, rng)
        assert outcome in (0, 1)
        # Bell state: both qubits always agree after measurement.
        expected_index = 0b11 if outcome else 0b00
        assert np.abs(collapsed[expected_index]) == pytest.approx(1.0)

    def test_measure_does_not_mutate_input(self, bell_state, rng):
        original = bell_state.copy()
        measurement.measure_qubit(bell_state, 0, rng)
        assert np.array_equal(bell_state, original)


class TestFidelity:
    def test_identical_states(self, bell_state):
        assert measurement.state_fidelity(bell_state, bell_state) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        a = np.array([1.0, 0.0], dtype=complex)
        b = np.array([0.0, 1.0], dtype=complex)
        assert measurement.state_fidelity(a, b) == pytest.approx(0.0)

    def test_global_phase_invariance(self, bell_state):
        rotated = bell_state * np.exp(0.7j)
        assert measurement.state_fidelity(bell_state, rotated) == pytest.approx(1.0)

    def test_dimension_mismatch(self, bell_state):
        with pytest.raises(ValueError):
            measurement.state_fidelity(bell_state, np.zeros(8, dtype=complex))
