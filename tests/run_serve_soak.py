"""CI entry point for the deterministic serve soak.

Runs the scripted multi-tenant soak from :mod:`tests.serve_harness` at full
CI scale (500 jobs across 4 weighted tenants, one injected worker kill
recovered mid-run), verifies every contract the harness asserts, writes the
JSON summary for trend ingestion and exits non-zero when any contract is
broken — this script is the gate, ``benchmarks/trend.py --serve`` is the
history.

Usage::

    PYTHONPATH=src python tests/run_serve_soak.py --out serve-soak.json
    PYTHONPATH=src python tests/run_serve_soak.py --jobs 120   # local smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from serve_harness import run_soak  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--jobs", type=int, default=500, help="total jobs across all tenants"
    )
    parser.add_argument(
        "--kill-after",
        type=int,
        default=10,
        help="pool tasks before the injected worker kill fires",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the JSON summary here (stdout gets it either way)",
    )
    args = parser.parse_args(argv)

    summary = run_soak(num_jobs=args.jobs, kill_after=args.kill_after)
    payload = json.dumps(summary, sort_keys=True)
    print(payload)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(payload + "\n")

    failures = []
    if not summary["fairness_ok"]:
        failures.append("dispatch prefix diverged from the analytic DRR schedule")
    if not summary["starvation_ok"]:
        failures.append(f"starvation gap exceeded bound: {summary['starvation_gaps']}")
    if summary["recoveries"] < 1:
        failures.append("injected worker kill was never recovered")
    if summary["bit_identity_mismatches"]:
        failures.append(
            f"{summary['bit_identity_mismatches']} cached result(s) "
            "diverged from their cold-run counterparts"
        )
    if summary["cache"]["hits"] == 0:
        failures.append("result cache never hit")
    if failures:
        for message in failures:
            print(f"serve-soak: FAIL: {message}", file=sys.stderr)
        return 1
    print(
        f"serve-soak: OK: {summary['jobs']} jobs, "
        f"{summary['recoveries']} recovery(ies), "
        f"{summary['cache']['hits']} cache hit(s), "
        f"{summary['bit_identity_checked']} result(s) bit-verified "
        f"in {summary['duration_seconds']:.2f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
