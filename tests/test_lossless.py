"""Unit tests for the lossless (Zstd-role) compressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CompressorError, LosslessCompressor, roundtrip
from repro.compression.lossless import (
    lossless_compress_bytes,
    lossless_decompress_bytes,
)


class TestByteLevelHelpers:
    @pytest.mark.parametrize("backend", ["zlib", "lzma", "bz2"])
    def test_roundtrip_bytes(self, backend):
        raw = b"quantum state amplitudes" * 100
        blob = lossless_compress_bytes(raw, backend)
        assert lossless_decompress_bytes(blob, backend) == raw
        assert len(blob) < len(raw)

    def test_unknown_backend(self):
        with pytest.raises(CompressorError):
            lossless_compress_bytes(b"abc", "snappy")
        with pytest.raises(CompressorError):
            lossless_decompress_bytes(b"abc", "snappy")


class TestLosslessCompressor:
    @pytest.mark.parametrize("backend", ["zlib", "lzma", "bz2"])
    def test_exact_roundtrip(self, backend, rng):
        data = rng.normal(size=2048)
        compressor = LosslessCompressor(backend=backend)
        recovered, record = roundtrip(compressor, data)
        assert np.array_equal(recovered, data)
        assert record.max_abs_error == 0.0

    def test_zero_data_compresses_massively(self):
        data = np.zeros(1 << 14)
        compressor = LosslessCompressor()
        blob = compressor.compress(data)
        assert len(blob) < data.nbytes / 100
        assert np.array_equal(compressor.decompress(blob), data)

    def test_sparse_data_better_than_dense(self, rng):
        # The premise of Section 3.7: early (sparse) states compress well
        # losslessly, entangled (dense random) states do not.
        sparse = np.zeros(1 << 12)
        sparse[:: 1 << 8] = rng.normal(size=1 << 4)
        dense = rng.normal(size=1 << 12)
        compressor = LosslessCompressor()
        sparse_ratio = sparse.nbytes / len(compressor.compress(sparse))
        dense_ratio = dense.nbytes / len(compressor.compress(dense))
        assert sparse_ratio > 10 * dense_ratio

    def test_complex_input_accepted(self, rng):
        data = rng.normal(size=256) + 1j * rng.normal(size=256)
        compressor = LosslessCompressor()
        recovered = compressor.decompress(compressor.compress(data))
        assert np.array_equal(recovered.view(np.complex128), data)

    def test_is_lossless_flag(self):
        compressor = LosslessCompressor()
        assert compressor.is_lossless
        assert compressor.bound == 0.0
        assert "lossless" in compressor.describe()

    # (empty-array and foreign/garbage-blob rejection moved to the
    # codec_name-parametrized tests in test_codecs_common.py)

    def test_rejects_unknown_backend(self):
        with pytest.raises(CompressorError):
            LosslessCompressor(backend="lz4")

    def test_cross_backend_decode_uses_embedded_backend_id(self):
        data = np.linspace(0, 1, 512)
        blob = LosslessCompressor(backend="lzma").compress(data)
        # A zlib-configured instance can still decode: backend id is embedded.
        recovered = LosslessCompressor(backend="zlib").decompress(blob)
        assert np.array_equal(recovered, data)
