"""Unit tests for the vectorised gate kernels (repro.statevector.ops)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import gates, standard_gate
from repro.statevector import ops


def _dense_single_qubit_operator(matrix: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Eq. 5: build the full 2^n x 2^n operator by Kronecker products."""

    operator = np.array([[1.0]], dtype=complex)
    for position in reversed(range(num_qubits)):
        factor = matrix if position == qubit else np.eye(2)
        operator = np.kron(operator, factor)
    return operator


def _random_state(num_qubits: int, rng: np.random.Generator) -> np.ndarray:
    state = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return state / np.linalg.norm(state)


class TestApplySingleQubit:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 5])
    @pytest.mark.parametrize("gate_name", ["h", "x", "t", "sx"])
    def test_matches_kronecker_construction(self, num_qubits, gate_name, rng):
        matrix = gates.GATE_ALIASES[gate_name]
        for qubit in range(num_qubits):
            state = _random_state(num_qubits, rng)
            expected = _dense_single_qubit_operator(matrix, qubit, num_qubits) @ state
            actual = state.copy()
            ops.apply_single_qubit(actual, matrix, qubit)
            assert np.allclose(actual, expected, atol=1e-12)

    def test_preserves_norm(self, rng):
        state = _random_state(6, rng)
        ops.apply_single_qubit(state, gates.H, 3)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-12)

    def test_rejects_bad_qubit(self, rng):
        state = _random_state(3, rng)
        with pytest.raises(ValueError):
            ops.apply_single_qubit(state, gates.H, 3)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ops.apply_single_qubit(np.zeros(6, dtype=complex), gates.H, 0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            ops.apply_single_qubit(np.zeros((2, 2), dtype=complex), gates.H, 0)


class TestApplyControlled:
    def test_cnot_truth_table(self):
        # CNOT with control 1, target 0 on computational basis states.
        for control_value in (0, 1):
            for target_value in (0, 1):
                index = (control_value << 1) | target_value
                state = np.zeros(4, dtype=complex)
                state[index] = 1.0
                ops.apply_controlled_single_qubit(state, gates.X, 0, (1,))
                expected_target = target_value ^ control_value
                expected_index = (control_value << 1) | expected_target
                assert np.argmax(np.abs(state)) == expected_index

    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_matches_dense_controlled_operator(self, num_qubits, rng):
        state = _random_state(num_qubits, rng)
        control, target = 1, 0
        # Build controlled-U densely: identity on |control=0>, U on |control=1>.
        dim = 1 << num_qubits
        operator = np.eye(dim, dtype=complex)
        u = gates.T
        for index in range(dim):
            if (index >> control) & 1 and not (index >> target) & 1:
                j = index | (1 << target)
                operator[index, index] = u[0, 0]
                operator[index, j] = u[0, 1]
                operator[j, index] = u[1, 0]
                operator[j, j] = u[1, 1]
        expected = operator @ state
        actual = state.copy()
        ops.apply_controlled_single_qubit(actual, u, target, (control,))
        assert np.allclose(actual, expected, atol=1e-12)

    def test_toffoli_only_flips_when_both_controls_set(self):
        state = np.zeros(8, dtype=complex)
        state[0b011] = 1.0  # controls (bits 0,1) set, target bit 2 clear
        ops.apply_controlled_single_qubit(state, gates.X, 2, (0, 1))
        assert np.argmax(np.abs(state)) == 0b111

        state = np.zeros(8, dtype=complex)
        state[0b001] = 1.0  # only one control set
        ops.apply_controlled_single_qubit(state, gates.X, 2, (0, 1))
        assert np.argmax(np.abs(state)) == 0b001

    def test_empty_controls_falls_back_to_single_qubit(self, rng):
        state = _random_state(3, rng)
        expected = state.copy()
        ops.apply_single_qubit(expected, gates.H, 1)
        actual = state.copy()
        ops.apply_controlled_single_qubit(actual, gates.H, 1, ())
        assert np.allclose(actual, expected)

    def test_control_equals_target_rejected(self, rng):
        state = _random_state(3, rng)
        with pytest.raises(ValueError):
            ops.apply_controlled_single_qubit(state, gates.X, 1, (1,))

    def test_control_out_of_range_rejected(self, rng):
        state = _random_state(3, rng)
        with pytest.raises(ValueError):
            ops.apply_controlled_single_qubit(state, gates.X, 1, (5,))


class TestPairwiseKernel:
    def test_matches_full_vector_update(self, rng):
        # Applying U to the top qubit of a 2-block state should equal the
        # pairwise kernel applied to the two halves.
        num_qubits = 6
        state = _random_state(num_qubits, rng)
        top = num_qubits - 1
        expected = state.copy()
        ops.apply_single_qubit(expected, gates.SX, top)

        half = state.size // 2
        x = state[:half].copy()
        y = state[half:].copy()
        ops.apply_single_qubit_pairwise(x, y, gates.SX)
        assert np.allclose(np.concatenate([x, y]), expected, atol=1e-12)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ops.apply_single_qubit_pairwise(
                np.zeros(4, dtype=complex), np.zeros(8, dtype=complex), gates.H
            )


class TestControlMaskIndices:
    def test_selects_expected_indices(self):
        indices = ops.control_mask_indices(16, 0b0101, 0b0101)
        assert all((i & 0b0101) == 0b0101 for i in indices)
        assert len(indices) == 4

    def test_zero_mask_selects_everything(self):
        assert len(ops.control_mask_indices(8, 0, 0)) == 8


class TestApplyGateToVector:
    def test_dispatches_on_controls(self, rng):
        state = _random_state(4, rng)
        uncontrolled = standard_gate("h", 2)
        controlled = standard_gate("x", 0, controls=(3,))
        a = state.copy()
        ops.apply_gate_to_vector(a, uncontrolled)
        b = state.copy()
        ops.apply_single_qubit(b, gates.H, 2)
        assert np.allclose(a, b)

        a = state.copy()
        ops.apply_gate_to_vector(a, controlled)
        b = state.copy()
        ops.apply_controlled_single_qubit(b, gates.X, 0, (3,))
        assert np.allclose(a, b)
