"""Tests for the benchmark circuit generators (Grover, RCS, QAOA, QFT, Hadamard)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.applications import (
    GridSpec,
    cut_size,
    cz_pattern,
    expected_cut_from_counts,
    grover_circuit,
    grover_square_root_circuit,
    hadamard_layers_circuit,
    hadamard_scaling_circuit,
    marked_state_for_square_root,
    maxcut_value,
    optimal_iterations,
    qaoa_maxcut_circuit,
    qft_benchmark_circuit,
    qft_reference_state,
    random_regular_graph,
    random_supremacy_circuit,
)
from repro.statevector import DenseSimulator, simulate_statevector


class TestGrover:
    def test_optimal_iterations_formula(self):
        # pi/4 * sqrt(N) for a single marked state.
        assert optimal_iterations(10, 1) == round(math.pi / 4 * math.sqrt(1024) - 0.5)
        assert optimal_iterations(4, 1) == 3

    def test_optimal_iterations_validation(self):
        with pytest.raises(ValueError):
            optimal_iterations(3, 0)
        with pytest.raises(ValueError):
            optimal_iterations(2, 4)

    @pytest.mark.parametrize("num_qubits,marked", [(6, 17), (8, 200), (9, 1)])
    def test_amplifies_marked_state(self, num_qubits, marked):
        state = simulate_statevector(grover_circuit(num_qubits, marked))
        probability = abs(state[marked]) ** 2
        assert probability > 0.9

    def test_multiple_marked_states(self):
        marked = (3, 12)
        state = simulate_statevector(grover_circuit(6, marked))
        total = sum(abs(state[m]) ** 2 for m in marked)
        assert total > 0.9

    def test_oracle_uses_only_x_and_controlled_z_and_h(self):
        circuit = grover_circuit(6, 5)
        names = {gate.name for gate in circuit}
        assert names <= {"h", "x", "z"}

    def test_validation(self):
        with pytest.raises(ValueError):
            grover_circuit(4, 100)
        with pytest.raises(ValueError):
            grover_circuit(4, [])
        with pytest.raises(ValueError):
            grover_circuit(4, 1, iterations=0)

    def test_square_root_oracle(self):
        num_qubits = 6
        square = 25
        root = marked_state_for_square_root(num_qubits, square)
        assert (root * root) % (1 << num_qubits) == square
        state = simulate_statevector(grover_square_root_circuit(num_qubits, square))
        probs = np.abs(state) ** 2
        winners = np.argsort(probs)[::-1][:4]
        assert all((int(w) ** 2) % (1 << num_qubits) == square for w in winners)

    def test_square_root_non_residue_rejected(self):
        with pytest.raises(ValueError):
            grover_square_root_circuit(4, 3)  # 3 is not a QR mod 16


class TestRandomSupremacyCircuit:
    def test_grid_spec(self):
        grid = GridSpec(3, 4)
        assert grid.num_qubits == 12
        assert grid.index(2, 3) == 11
        with pytest.raises(ValueError):
            GridSpec(0, 4)

    def test_cz_patterns_are_valid_neighbour_pairs(self):
        grid = GridSpec(4, 5)
        for layer in range(8):
            for a, b in cz_pattern(grid, layer):
                ra, ca = divmod(a, grid.cols)
                rb, cb = divmod(b, grid.cols)
                assert abs(ra - rb) + abs(ca - cb) == 1

    def test_cz_pattern_no_qubit_reuse_within_layer(self):
        grid = GridSpec(4, 4)
        for layer in range(8):
            qubits = [q for pair in cz_pattern(grid, layer) for q in pair]
            assert len(qubits) == len(set(qubits))

    def test_circuit_structure(self):
        circuit = random_supremacy_circuit(3, 4, depth=8, seed=11)
        assert circuit.num_qubits == 12
        # Starts with a Hadamard on every qubit.
        assert all(gate.name == "h" for gate in circuit.gates[:12])
        names = {gate.name for gate in circuit}
        assert "z" in names  # CZ gates present
        assert names & {"t", "sx", "ry"}  # single-qubit layer gates present

    def test_seed_reproducibility(self):
        a = random_supremacy_circuit(3, 3, depth=6, seed=5)
        b = random_supremacy_circuit(3, 3, depth=6, seed=5)
        c = random_supremacy_circuit(3, 3, depth=6, seed=6)
        assert a == b
        assert a != c

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            random_supremacy_circuit(2, 2, depth=0)

    def test_entangles_the_register(self):
        circuit = random_supremacy_circuit(3, 4, depth=16, seed=2)
        state = simulate_statevector(circuit)
        probs = np.abs(state) ** 2
        # The distribution spreads over many outcomes with no dominant one
        # (a small grid does not reach Porter-Thomas, but it must be far from
        # a basis state or a uniform superposition).
        assert probs.max() < 0.05
        assert np.unique(np.round(probs, 12)).size > 20


class TestQAOA:
    def test_random_regular_graph_degree(self):
        graph = random_regular_graph(10, degree=4, seed=1)
        assert all(degree == 4 for _, degree in graph.degree())

    def test_regular_graph_validation(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, degree=4)
        with pytest.raises(ValueError):
            random_regular_graph(7, degree=3)

    def test_circuit_gate_count(self):
        graph = random_regular_graph(8, degree=4, seed=1)
        circuit = qaoa_maxcut_circuit(graph, gammas=[0.4], betas=[0.7])
        # n Hadamards + 3 gates per edge + n mixers.
        expected = 8 + 3 * graph.number_of_edges() + 8
        assert len(circuit) == expected

    def test_parameter_validation(self):
        graph = random_regular_graph(8, degree=4, seed=1)
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(graph, [0.1], [0.2, 0.3])
        with pytest.raises(ValueError):
            qaoa_maxcut_circuit(graph, [], [])

    def test_cut_helpers(self):
        graph = random_regular_graph(8, degree=4, seed=3)
        assert cut_size(graph, 0) == 0
        assert cut_size(graph, (1 << 8) - 1) == 0
        best = maxcut_value(graph)
        assert 0 < best <= graph.number_of_edges()
        counts = {0: 5, (1 << 8) - 1: 5}
        assert expected_cut_from_counts(graph, counts) == 0.0
        assert expected_cut_from_counts(graph, {}) == 0.0

    def test_qaoa_biases_towards_large_cuts(self, rng):
        graph = random_regular_graph(8, degree=4, seed=5)
        # Angles found by a coarse classical sweep for this graph; the point
        # of the test is only that the circuit biases sampling toward large
        # cuts, not that the angles are optimal.
        circuit = qaoa_maxcut_circuit(graph, gammas=[0.2], betas=[1.2])
        simulator = DenseSimulator(8)
        simulator.apply_circuit(circuit)
        counts = simulator.sample_counts(2000, rng)
        average_cut = expected_cut_from_counts(graph, counts)
        edges = graph.number_of_edges()
        # Random guessing cuts half the edges on average; one QAOA layer with
        # decent angles must do measurably better.
        assert average_cut > edges / 2 + 0.5


class TestQFTBenchmark:
    def test_reference_state_formula(self):
        state = qft_reference_state(4, 3)
        assert np.abs(np.vdot(state, state)) == pytest.approx(1.0)
        circuit_state = simulate_statevector(qft_benchmark_circuit(4, seed=0))
        assert np.abs(np.vdot(circuit_state, circuit_state)) == pytest.approx(1.0)

    def test_benchmark_circuit_matches_reference(self):
        seed = 42
        num_qubits = 6
        circuit = qft_benchmark_circuit(num_qubits, seed=seed)
        state = simulate_statevector(circuit)
        basis = int(np.random.default_rng(seed).integers(1 << num_qubits))
        expected = qft_reference_state(num_qubits, basis)
        assert np.allclose(state, expected, atol=1e-10)

    def test_reference_state_validation(self):
        with pytest.raises(ValueError):
            qft_reference_state(3, 8)

    def test_gate_count_grows_quadratically(self):
        # Doubling the register size should far more than double the gate
        # count (the controlled-phase ladder is quadratic in n).
        small = len(qft_benchmark_circuit(6, seed=1))
        large = len(qft_benchmark_circuit(12, seed=1))
        assert large >= 2.8 * small


class TestHadamardWorkload:
    def test_scaling_circuit_is_one_gate_per_qubit(self):
        circuit = hadamard_scaling_circuit(9)
        assert len(circuit) == 9
        assert all(gate.name == "h" for gate in circuit)

    def test_layers_circuit_round_trips_to_zero_state(self):
        circuit = hadamard_layers_circuit(5, layers=2)
        state = simulate_statevector(circuit)
        assert abs(state[0]) == pytest.approx(1.0)

    def test_layers_validation(self):
        with pytest.raises(ValueError):
            hadamard_layers_circuit(4, layers=0)
