"""Property-based tests (hypothesis) for the compressed simulator.

The invariant behind the whole reproduction: for *any* circuit and *any*
partition geometry, the blocked/compressed simulation under lossless
compression is amplitude-for-amplitude identical to the dense reference, and
under lossy compression the measured fidelity never falls below the
Π(1 - δ) bound the simulator reports.

The ``simulator_config`` factory fixture is session-scoped, which keeps it
compatible with hypothesis's function-scoped-fixture health check.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import QuantumCircuit
from repro.core import CompressedSimulator
from repro.statevector import simulate_statevector, state_fidelity

NUM_QUBITS = 6

_single_gates = ("h", "x", "y", "z", "s", "t", "sx")


@st.composite
def random_circuits(draw) -> QuantumCircuit:
    """A random circuit mixing single-qubit, controlled and Toffoli gates."""

    circuit = QuantumCircuit(NUM_QUBITS)
    num_gates = draw(st.integers(min_value=1, max_value=25))
    for _ in range(num_gates):
        kind = draw(st.integers(min_value=0, max_value=3))
        qubits = draw(
            st.permutations(range(NUM_QUBITS)).map(lambda p: p[:3])
        )
        if kind == 0:
            name = draw(st.sampled_from(_single_gates))
            circuit.add(name, qubits[0])
        elif kind == 1:
            theta = draw(st.floats(-3.14, 3.14, allow_nan=False))
            circuit.rz(theta, qubits[0])
        elif kind == 2:
            circuit.cx(qubits[0], qubits[1])
        else:
            circuit.ccx(qubits[0], qubits[1], qubits[2])
    return circuit


_partitions = st.sampled_from(
    [
        (1, 64),  # single rank, single block
        (1, 16),  # single rank, several blocks
        (2, 16),
        (4, 8),
        (8, 4),
    ]
)


class TestLosslessEquivalence:
    @given(circuit=random_circuits(), shape=_partitions)
    @settings(max_examples=30, deadline=None)
    def test_matches_dense_amplitude_for_amplitude(self, circuit, shape, simulator_config):
        ranks, block = shape
        config = simulator_config(num_ranks=ranks, block_amplitudes=block)
        simulator = CompressedSimulator(NUM_QUBITS, config)
        simulator.apply_circuit(circuit)
        dense = simulate_statevector(circuit)
        assert np.allclose(simulator.statevector(), dense, atol=1e-10)
        assert simulator.norm_squared() == pytest.approx(1.0, abs=1e-9)

    @given(circuit=random_circuits())
    @settings(max_examples=15, deadline=None)
    def test_cache_does_not_change_results(self, circuit, simulator_config):
        states = []
        for use_cache in (True, False):
            config = simulator_config(
                num_ranks=2, block_amplitudes=16, use_block_cache=use_cache
            )
            simulator = CompressedSimulator(NUM_QUBITS, config)
            simulator.apply_circuit(circuit)
            states.append(simulator.statevector())
        assert np.allclose(states[0], states[1], atol=1e-12)


class TestLossyFidelityBound:
    @given(
        circuit=random_circuits(),
        bound=st.sampled_from([1e-4, 1e-3, 1e-2]),
    )
    @settings(max_examples=20, deadline=None)
    def test_measured_fidelity_respects_reported_bound(self, circuit, bound, simulator_config):
        config = simulator_config(
            num_ranks=2,
            block_amplitudes=16,
            start_lossless=False,
            error_levels=(bound,),
        )
        simulator = CompressedSimulator(NUM_QUBITS, config)
        report = simulator.apply_circuit(circuit)
        dense = simulate_statevector(circuit)
        fidelity = simulator.fidelity_vs(dense)
        assert fidelity >= report.fidelity_lower_bound - 1e-12
        # One (1 - δ) factor per *executed* gate: with fusion on by default
        # a run of fusible gates pays a single compression event, so the
        # tracked bound is per fused gate, not per source gate.
        assert report.gates_executed <= len(circuit)
        assert report.fidelity_lower_bound == pytest.approx(
            (1.0 - bound) ** report.gates_executed, rel=1e-9
        )
        # Norm can only shrink under magnitude-truncating compression.
        assert simulator.norm_squared() <= 1.0 + 1e-9
