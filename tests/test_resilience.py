"""Fault-tolerant execution (``repro.resilience``).

The contract under test: with a recovery-enabled :class:`FaultPolicy`, a
seeded fault plan that kills a process worker mid-run — or a rank worker
mid-run — still completes and is *bit-identical* (statevector, sampling,
observables) to a failure-free run; with retries exhausted, the degrade
ladder falls back one executor tier and still finishes.  The deterministic
injection harness itself (plan parsing, per-blob checksums, structured
errors) is covered alongside.
"""

from __future__ import annotations

import os
import pickle
import signal
import time

import numpy as np
import pytest

import repro
from repro import errors
from repro.applications import qft_benchmark_circuit
from repro.backends import PauliObservable
from repro.core import CompressedSimulator, SimulatorConfig, load_checkpoint
from repro.core.checkpoint import read_checkpoint
from repro.core.procpool import SlotArena
from repro.errors import (
    BlockCorruptionError,
    CheckpointError,
    ProcessCommTimeout,
    ReproError,
    WorkerCrashedError,
)
from repro.resilience import DEGRADE_TIERS, FaultPolicy, resolve_fault_policy
from repro.resilience import faults
from repro.resilience.faults import (
    CorruptFrame,
    DelayComm,
    DropComm,
    FaultPlan,
    KillWorker,
    parse_plan,
)

NUM_QUBITS = 6
BLOCK = 16
SHOTS = 64


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends with no active plan or policy override."""

    monkeypatch.delenv(faults.PLAN_ENV_VAR, raising=False)
    monkeypatch.delenv("REPRO_FAULT_POLICY", raising=False)
    faults.clear_plan()
    yield
    faults.clear_plan()


def process_config(policy=None, **overrides) -> SimulatorConfig:
    defaults = dict(
        num_ranks=2,
        block_amplitudes=BLOCK,
        num_workers=2,
        executor="process",
        fault_policy=policy,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


def ranked_config(policy=None, **overrides) -> SimulatorConfig:
    defaults = dict(
        num_ranks=2,
        block_amplitudes=BLOCK,
        comm="process",
        fault_policy=policy,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


def run_to_outcome(config, circuit):
    """Run ``circuit``, returning (statevector, sample counts, recovery dict)."""

    with CompressedSimulator(NUM_QUBITS, config) as simulator:
        simulator.apply_circuit(circuit)
        statevector = simulator.statevector()
        counts = simulator.sample_counts(SHOTS, np.random.default_rng(7))
        recovery = simulator.report().recovery
    return statevector, counts, recovery


@pytest.fixture(scope="module")
def circuit():
    return qft_benchmark_circuit(NUM_QUBITS)


@pytest.fixture(scope="module")
def baseline(circuit):
    """Failure-free reference outcome on the same partition geometry."""

    config = SimulatorConfig(num_ranks=2, block_amplitudes=BLOCK)
    with CompressedSimulator(NUM_QUBITS, config) as simulator:
        simulator.apply_circuit(circuit)
        return (
            simulator.statevector(),
            simulator.sample_counts(SHOTS, np.random.default_rng(7)),
        )


def assert_bit_identical(statevector, counts, baseline):
    base_sv, base_counts = baseline
    assert np.array_equal(
        statevector.view(np.uint64), base_sv.view(np.uint64)
    )
    assert counts == base_counts


class TestErrorTaxonomy:
    def test_old_locations_reexport_the_same_classes(self):
        import repro.core.checkpoint as checkpoint
        import repro.core.procpool as procpool
        import repro.distributed.process_comm as process_comm

        assert procpool.WorkerCrashedError is WorkerCrashedError
        assert procpool.BlockCorruptionError is BlockCorruptionError
        assert process_comm.ProcessCommTimeout is ProcessCommTimeout
        assert checkpoint.CheckpointError is CheckpointError
        assert repro.WorkerCrashedError is WorkerCrashedError
        assert repro.core.WorkerCrashedError is WorkerCrashedError

    def test_common_base_keeps_runtimeerror_in_the_mro(self):
        for cls in (
            WorkerCrashedError,
            ProcessCommTimeout,
            BlockCorruptionError,
            CheckpointError,
        ):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, RuntimeError)
        assert errors.ReproError is ReproError

    def test_structured_context_lands_in_message_and_dict(self):
        error = WorkerCrashedError(
            "worker 1 died", worker_id=1, pid=4242, exitcode=-9
        )
        assert error.worker_id == 1
        assert error.pid == 4242
        assert error.context() == {"worker_id": 1, "pid": 4242, "exitcode": -9}
        assert "worker_id=1" in str(error)
        assert "pid=4242" in str(error)

    def test_unknown_context_key_is_rejected(self):
        with pytest.raises(TypeError, match="unknown context"):
            WorkerCrashedError("boom", banana=1)

    def test_context_survives_pickling(self):
        error = ProcessCommTimeout(
            "rank 0 timed out",
            rank=0,
            peer=1,
            op="sendrecv",
            elapsed_seconds=2.5,
            timeout_seconds=2.0,
        )
        clone = pickle.loads(pickle.dumps(error))
        assert clone.context() == error.context()
        assert str(clone) == str(error)


class TestFaultPolicy:
    def test_default_policy_is_inert(self):
        policy = FaultPolicy()
        assert not policy.active
        assert resolve_fault_policy(None) == policy

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(backoff_jitter=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(degrade_to=("gpu",))

    def test_backoff_is_deterministic_and_capped(self):
        policy = FaultPolicy(
            max_retries=3,
            backoff_base_seconds=0.5,
            backoff_multiplier=4.0,
            backoff_max_seconds=1.0,
            seed=3,
        )
        first = [policy.backoff_seconds(n) for n in range(4)]
        second = [policy.backoff_seconds(n) for n in range(4)]
        assert first == second
        assert all(b <= 1.0 for b in first)
        assert first[0] >= 0.5

    def test_env_spec_is_parsed(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_POLICY",
            "max_retries=3,degrade_to=thread+sequential,seed=7",
        )
        policy = resolve_fault_policy(None)
        assert policy.max_retries == 3
        assert policy.degrade_to == ("thread", "sequential")
        assert policy.seed == 7

    def test_env_spec_rejects_unknown_keys(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_POLICY", "retries=3")
        with pytest.raises(ValueError, match="unknown fault-policy key"):
            resolve_fault_policy(None)

    def test_active_plan_enables_recovery_by_default(self):
        with faults.installed_plan(FaultPlan(chaos_seed=1)):
            policy = resolve_fault_policy(None)
        assert policy.max_retries == 2
        assert policy.degrade_to == DEGRADE_TIERS

    def test_explicit_policy_wins_over_env_and_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_POLICY", "max_retries=9")
        with faults.installed_plan(FaultPlan(chaos_seed=1)):
            policy = resolve_fault_policy(FaultPolicy(max_retries=1))
        assert policy.max_retries == 1


class TestPlanParsing:
    def test_spec_round_trip(self):
        plan = parse_plan(
            "kill:worker=1,after=5,kinds=task+circuit;"
            "corrupt:worker=0,after=2;"
            "drop:rank=0,peer=1,after=4;"
            "delay:rank=1,peer=0,seconds=0.2,after=1;"
            "chaos:prob=0.05,seed=11"
        )
        assert KillWorker(worker=1, after=5, kinds=("task", "circuit")) in (
            plan.injections
        )
        assert CorruptFrame(worker=0, after=2) in plan.injections
        assert DropComm(rank=0, peer=1, after=4) in plan.injections
        assert DelayComm(rank=1, peer=0, seconds=0.2, after=1) in plan.injections
        assert plan.chaos_seed == 11
        assert plan.chaos_kill_probability == 0.05

    def test_unknown_directives_fail_loudly(self):
        with pytest.raises(ValueError):
            parse_plan("explode:worker=1")
        with pytest.raises(ValueError):
            parse_plan("kill:worker=1,after=0")

    def test_env_plan_is_read_per_call(self, monkeypatch):
        assert faults.get_active_plan() is None
        monkeypatch.setenv(faults.PLAN_ENV_VAR, "kill:worker=0,after=3")
        plan = faults.get_active_plan()
        assert plan is not None
        assert KillWorker(worker=0, after=3) in plan.injections


class TestProcessTierRecovery:
    def test_worker_kill_is_recovered_bit_identically(self, circuit, baseline):
        plan = FaultPlan(
            injections=(KillWorker(worker=0, after=5, kinds=("task",)),)
        )
        with faults.installed_plan(plan):
            statevector, counts, recovery = run_to_outcome(
                process_config(FaultPolicy(max_retries=2)), circuit
            )
        assert_bit_identical(statevector, counts, baseline)
        assert recovery["retries"] == 1
        assert recovery["restarts"] == 1
        assert recovery["degraded_to"] is None
        assert recovery["time_lost_seconds"] > 0.0

    def test_corrupt_frame_is_retried_from_parent_copy(self, circuit, baseline):
        plan = FaultPlan(injections=(CorruptFrame(worker=0, after=2),))
        with faults.installed_plan(plan):
            statevector, counts, recovery = run_to_outcome(
                process_config(FaultPolicy(max_retries=2)), circuit
            )
        assert_bit_identical(statevector, counts, baseline)
        assert recovery["retries"] == 1
        assert recovery["restarts"] == 0

    def test_degrade_ladder_falls_back_to_thread(self, circuit, baseline):
        plan = FaultPlan(
            injections=(KillWorker(worker=0, after=5, kinds=("task",)),)
        )
        policy = FaultPolicy(max_retries=0, degrade_to=("thread",))
        with faults.installed_plan(plan):
            with CompressedSimulator(
                NUM_QUBITS, process_config(policy)
            ) as simulator:
                simulator.apply_circuit(circuit)
                statevector = simulator.statevector()
                counts = simulator.sample_counts(SHOTS, np.random.default_rng(7))
                assert simulator.executor.degraded_tier == "thread"
                recovery = simulator.report().recovery
        assert_bit_identical(statevector, counts, baseline)
        assert recovery["degraded_to"] == "thread"

    def test_degrade_ladder_falls_back_to_sequential(self, circuit, baseline):
        plan = FaultPlan(
            injections=(KillWorker(worker=1, after=3, kinds=("task",)),)
        )
        policy = FaultPolicy(max_retries=0, degrade_to=("sequential",))
        with faults.installed_plan(plan):
            with CompressedSimulator(
                NUM_QUBITS, process_config(policy)
            ) as simulator:
                simulator.apply_circuit(circuit)
                statevector = simulator.statevector()
                counts = simulator.sample_counts(SHOTS, np.random.default_rng(7))
                assert simulator.executor.degraded_tier == "sequential"
        assert_bit_identical(statevector, counts, baseline)

    def test_exhausted_retries_fall_back_one_tier(self, circuit, baseline):
        # Two kills landing in one wave: the first consumes the single
        # allowed retry, the second exhausts it — the ladder must then take
        # over instead of raising.
        plan = FaultPlan(
            injections=(
                KillWorker(worker=-1, after=1, kinds=("task",)),
                KillWorker(worker=-1, after=2, kinds=("task",)),
            )
        )
        policy = FaultPolicy(
            max_retries=1, degrade_to=("thread", "sequential")
        )
        with faults.installed_plan(plan):
            with CompressedSimulator(
                NUM_QUBITS, process_config(policy)
            ) as simulator:
                simulator.apply_circuit(circuit)
                statevector = simulator.statevector()
                counts = simulator.sample_counts(SHOTS, np.random.default_rng(7))
                assert simulator.executor.degraded_tier == "thread"
                recovery = simulator.report().recovery
        assert_bit_identical(statevector, counts, baseline)
        assert recovery["retries"] == 1
        assert recovery["degraded_to"] == "thread"

    def test_fail_fast_policy_raises_with_context(self, circuit):
        plan = FaultPlan(
            injections=(KillWorker(worker=0, after=5, kinds=("task",)),)
        )
        with faults.installed_plan(plan):
            with CompressedSimulator(
                NUM_QUBITS, process_config(FaultPolicy(max_retries=0))
            ) as simulator:
                with pytest.raises(WorkerCrashedError) as excinfo:
                    simulator.apply_circuit(circuit)
        assert excinfo.value.worker_id == 0
        assert excinfo.value.pid is not None


class TestRankedRecovery:
    def test_rank_kill_resumes_from_checkpoint_bit_identically(
        self, circuit, baseline
    ):
        plan = FaultPlan(
            injections=(KillWorker(worker=1, after=6, kinds=("gate",)),)
        )
        policy = FaultPolicy(max_retries=2, checkpoint_interval_waves=4)
        with faults.installed_plan(plan):
            statevector, counts, recovery = run_to_outcome(
                ranked_config(policy), circuit
            )
        assert_bit_identical(statevector, counts, baseline)
        assert recovery["retries"] == 1
        assert recovery["restarts"] == 2  # the whole 2-rank pool is rebuilt
        assert recovery["checkpoints_written"] > 0

    def test_comm_drop_is_recovered_once(self, circuit, baseline, monkeypatch):
        # Environment-delivered plan: rank workers arm it in their own
        # processes; the rebuilt (generation > 0) pool must run clean.
        monkeypatch.setenv(faults.PLAN_ENV_VAR, "drop:rank=0,peer=1,after=4")
        policy = FaultPolicy(max_retries=2, checkpoint_interval_waves=2)
        statevector, counts, recovery = run_to_outcome(
            ranked_config(policy), circuit
        )
        assert_bit_identical(statevector, counts, baseline)
        assert recovery["retries"] == 1
        assert recovery["restarts"] == 2

    def test_comm_delay_is_absorbed_without_retry(
        self, circuit, baseline, monkeypatch
    ):
        monkeypatch.setenv(
            faults.PLAN_ENV_VAR, "delay:rank=1,peer=0,seconds=0.2,after=2"
        )
        policy = FaultPolicy(max_retries=1, checkpoint_interval_waves=2)
        statevector, counts, recovery = run_to_outcome(
            ranked_config(policy), circuit
        )
        assert_bit_identical(statevector, counts, baseline)
        assert recovery is None or recovery["retries"] == 0

    def test_comm_drop_fail_fast_carries_timeout_context(
        self, circuit, monkeypatch
    ):
        monkeypatch.setenv(faults.PLAN_ENV_VAR, "drop:rank=0,peer=1,after=4")
        with CompressedSimulator(
            NUM_QUBITS, ranked_config(FaultPolicy(max_retries=0))
        ) as simulator:
            with pytest.raises(ProcessCommTimeout) as excinfo:
                simulator.apply_circuit(circuit)
        assert excinfo.value.rank == 0
        assert excinfo.value.peer == 1
        assert excinfo.value.op == "sendrecv"

    def test_observables_identical_under_rank_kill(self, circuit):
        observable = PauliObservable("XZ" + "I" * (NUM_QUBITS - 2))
        reference = repro.run(
            circuit,
            backend="compressed",
            observables=observable,
            config=SimulatorConfig(num_ranks=2, block_amplitudes=BLOCK),
        )
        plan = FaultPlan(
            injections=(KillWorker(worker=1, after=6, kinds=("gate",)),)
        )
        with faults.installed_plan(plan):
            recovered = repro.run(
                circuit,
                backend="compressed",
                observables=observable,
                config=ranked_config(
                    FaultPolicy(max_retries=2, checkpoint_interval_waves=4)
                ),
            )
        assert recovered.expectations == reference.expectations

    def test_midrun_checkpoint_resumes_bit_identically(self, tmp_path):
        # The in-run resilience checkpoint is a plain QCKPT001 file: loading
        # it and replaying the remaining gates must land on the same state
        # as the uninterrupted run.  Fusion is disabled so the checkpoint's
        # gate_count indexes the circuit's gate list directly.
        circuit = qft_benchmark_circuit(NUM_QUBITS)
        interval = 4
        policy = FaultPolicy(
            checkpoint_interval_waves=interval, checkpoint_dir=str(tmp_path)
        )
        config = ranked_config(policy, fusion_enabled=False)
        with CompressedSimulator(NUM_QUBITS, config) as simulator:
            simulator.apply_circuit(circuit)
            expected = simulator.statevector()
        ckpt = tmp_path / "resilience.ckpt"
        assert ckpt.exists()
        meta, blocks = read_checkpoint(ckpt)
        assert meta["gate_count"] > 0
        assert meta["gate_count"] % interval == 0
        assert blocks
        resumed = load_checkpoint(
            ckpt,
            config=SimulatorConfig(
                num_ranks=2, block_amplitudes=BLOCK, fusion_enabled=False
            ),
        )
        with resumed:
            for gate in circuit.gates[meta["gate_count"] :]:
                resumed.apply_gate(gate)
            assert np.array_equal(
                resumed.statevector().view(np.uint64),
                expected.view(np.uint64),
            )


class TestBatchFanOut:
    def test_parallel_batch_survives_circuit_worker_kill(self):
        circuits = [
            qft_benchmark_circuit(NUM_QUBITS, seed=s) for s in range(4)
        ]
        reference = repro.run(circuits, shots=SHOTS, seed=11)
        plan = FaultPlan(
            injections=(KillWorker(worker=0, after=2, kinds=("circuit",)),)
        )
        with faults.installed_plan(plan):
            # No explicit policy: the active plan auto-enables recovery.
            recovered = repro.run(
                circuits,
                shots=SHOTS,
                seed=11,
                parallel="process",
                max_parallel=2,
            )
        assert [r.counts for r in recovered] == [r.counts for r in reference]


class TestBoundedTeardown:
    def test_close_reaps_a_killed_worker_promptly(self, circuit):
        config = process_config(FaultPolicy(max_retries=0))
        simulator = CompressedSimulator(NUM_QUBITS, config)
        simulator.apply_circuit(circuit)
        pool = simulator.executor.pool
        pids = [pool.worker_pid(i) for i in range(2)]
        os.kill(pids[0], signal.SIGKILL)
        start = time.monotonic()
        simulator.close()
        assert time.monotonic() - start < 10.0
        for pid in pids:
            # Every worker is reaped — no zombies, no orphans.
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_heal_respawns_only_the_dead_worker(self, circuit):
        config = process_config(FaultPolicy(max_retries=0))
        with CompressedSimulator(NUM_QUBITS, config) as simulator:
            simulator.apply_circuit(circuit)
            pool = simulator.executor.pool
            survivor_pid = pool.worker_pid(1)
            os.kill(pool.worker_pid(0), signal.SIGKILL)
            with pytest.raises(WorkerCrashedError):
                simulator.apply_circuit(circuit)
            restarted = pool.heal()
            assert restarted == [0]
            assert pool.worker_pid(1) == survivor_pid
            assert pool.worker_pid(0) != survivor_pid


class TestBlobChecksums:
    def test_corrupt_payload_raises_typed_error(self):
        arena = SlotArena(slots=2, slot_bytes=4096)
        try:
            refs = arena.write(0, [b"payload-bytes" * 7])
            assert refs is not None
            assert arena.read(refs[0]) == b"payload-bytes" * 7
            refs = arena.write(1, [b"second-payload" * 5])
            arena.corrupt(refs[0])
            with pytest.raises(BlockCorruptionError) as excinfo:
                arena.read(refs[0])
            assert excinfo.value.expected_crc != excinfo.value.actual_crc
            assert excinfo.value.slot is not None
        finally:
            arena.close()
