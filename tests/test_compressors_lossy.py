"""Unit tests for the lossy compressors: Solutions A-D, ZFP-like, FPZIP-like.

Each compressor must honour its declared error bound on a battery of data
shapes (random, spiky, sparse, constant, real quantum state snapshots) — the
property the whole simulation-fidelity argument of the paper rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    CompressorError,
    ErrorBoundMode,
    FPZIPLikeCompressor,
    ReshuffleCompressor,
    SZComplexCompressor,
    SZCompressor,
    XorBitplaneCompressor,
    ZFPLikeCompressor,
    get_compressor,
    roundtrip,
)
from repro.compression.fpzip_like import PAPER_PRECISION_MAP

RELATIVE_COMPRESSORS = {
    "sz": lambda bound: SZCompressor(bound=bound),
    "sz-complex": lambda bound: SZComplexCompressor(bound=bound),
    "xor-bitplane": lambda bound: XorBitplaneCompressor(bound=bound),
    "reshuffle": lambda bound: ReshuffleCompressor(bound=bound),
    "zfp": lambda bound: ZFPLikeCompressor(bound=bound, mode=ErrorBoundMode.RELATIVE),
    "fpzip": lambda bound: FPZIPLikeCompressor.from_relative_bound(bound),
}


def _relative_errors(original: np.ndarray, recovered: np.ndarray) -> np.ndarray:
    nonzero = original != 0
    return np.abs(recovered[nonzero] - original[nonzero]) / np.abs(original[nonzero])


class TestRelativeBoundIsHonoured:
    @pytest.mark.parametrize("name", sorted(RELATIVE_COMPRESSORS))
    @pytest.mark.parametrize("bound", [1e-1, 1e-3])
    def test_on_spiky_data(self, name, bound, spiky_data):
        compressor = RELATIVE_COMPRESSORS[name](bound)
        recovered, _ = roundtrip(compressor, spiky_data)
        assert _relative_errors(spiky_data, recovered).max() <= compressor.bound * (1 + 1e-9)

    @pytest.mark.parametrize("name", sorted(RELATIVE_COMPRESSORS))
    def test_on_qaoa_snapshot(self, name, qaoa_snapshot):
        compressor = RELATIVE_COMPRESSORS[name](1e-3)
        recovered, _ = roundtrip(compressor, qaoa_snapshot)
        assert _relative_errors(qaoa_snapshot, recovered).max() <= compressor.bound * (1 + 1e-9)

    @pytest.mark.parametrize("name", sorted(RELATIVE_COMPRESSORS))
    def test_on_sup_snapshot(self, name, sup_snapshot):
        compressor = RELATIVE_COMPRESSORS[name](1e-2)
        recovered, _ = roundtrip(compressor, sup_snapshot)
        assert _relative_errors(sup_snapshot, recovered).max() <= compressor.bound * (1 + 1e-9)

    @pytest.mark.parametrize("name", ["sz", "xor-bitplane", "reshuffle", "sz-complex"])
    def test_zeros_recovered_exactly(self, name, rng):
        data = rng.normal(size=1024)
        data[::3] = 0.0
        compressor = RELATIVE_COMPRESSORS[name](1e-3)
        recovered, _ = roundtrip(compressor, data)
        assert np.all(recovered[data == 0.0] == 0.0)

    @pytest.mark.parametrize("name", sorted(RELATIVE_COMPRESSORS))
    def test_constant_data(self, name):
        data = np.full(512, 0.125)
        compressor = RELATIVE_COMPRESSORS[name](1e-2)
        recovered, record = roundtrip(compressor, data)
        assert _relative_errors(data, recovered).max() <= compressor.bound
        assert record.ratio > 4


class TestAbsoluteBound:
    @pytest.mark.parametrize("bound", [1e-2, 1e-4])
    def test_sz_absolute(self, bound, rng):
        data = rng.normal(size=4096)
        compressor = SZCompressor(bound=bound, mode=ErrorBoundMode.ABSOLUTE)
        recovered, _ = roundtrip(compressor, data)
        assert np.abs(recovered - data).max() <= bound * (1 + 1e-12)

    @pytest.mark.parametrize("bound", [1e-2, 1e-4])
    def test_zfp_absolute(self, bound, rng):
        data = rng.normal(size=4096)
        compressor = ZFPLikeCompressor(bound=bound, mode=ErrorBoundMode.ABSOLUTE)
        recovered, _ = roundtrip(compressor, data)
        assert np.abs(recovered - data).max() <= bound * (1 + 1e-12)

    def test_sz_absolute_on_smooth_data_compresses_well(self):
        x = np.linspace(0, 10, 1 << 14)
        data = np.sin(x)
        compressor = SZCompressor(bound=1e-4, mode=ErrorBoundMode.ABSOLUTE)
        _, record = roundtrip(compressor, data)
        assert record.ratio > 10


class TestSolutionCBehaviour:
    """Properties the paper claims specifically for Solution C."""

    def test_magnitude_never_increases(self, qaoa_snapshot):
        compressor = XorBitplaneCompressor(bound=1e-3)
        recovered, _ = roundtrip(compressor, qaoa_snapshot)
        assert np.all(np.abs(recovered) <= np.abs(qaoa_snapshot) + 1e-300)

    def test_over_preservation(self, sup_snapshot):
        # Section 4.2: truncation errors are "generally somewhat lower than
        # the desired error bound" — check the mean error is well below it.
        bound = 1e-2
        compressor = XorBitplaneCompressor(bound=bound)
        recovered, _ = roundtrip(compressor, sup_snapshot)
        rel = _relative_errors(sup_snapshot, recovered)
        assert rel.mean() < bound / 2

    def test_errors_uncorrelated(self, sup_snapshot):
        from repro.compression.metrics import lag1_autocorrelation

        compressor = XorBitplaneCompressor(bound=1e-3)
        recovered, _ = roundtrip(compressor, sup_snapshot)
        errors = recovered - sup_snapshot
        # The paper reports |autocorrelation| in [1e-4] territory on 1M-point
        # blocks of dense data; on this small snapshot (many exact zeros) a
        # looser threshold still distinguishes "uncorrelated" from the ~0.5+
        # autocorrelation a smoothing/prediction-based scheme would show.
        assert abs(lag1_autocorrelation(errors)) < 0.1

    def test_keep_bytes_property(self):
        assert XorBitplaneCompressor(bound=1e-1).keep_bytes == 2
        assert XorBitplaneCompressor(bound=1e-5).keep_bytes == 4

    def test_tighter_bound_means_lower_ratio(self, sup_snapshot):
        loose = roundtrip(XorBitplaneCompressor(bound=1e-1), sup_snapshot)[1].ratio
        tight = roundtrip(XorBitplaneCompressor(bound=1e-5), sup_snapshot)[1].ratio
        assert loose > tight

    def test_solution_c_and_d_have_identical_errors(self, qaoa_snapshot):
        # Figure 12: "the error distribution curves of Solutions C and D
        # overlap ... they have exactly the same compression errors".
        c_recovered, _ = roundtrip(XorBitplaneCompressor(bound=1e-3), qaoa_snapshot)
        d_recovered, _ = roundtrip(ReshuffleCompressor(bound=1e-3), qaoa_snapshot)
        assert np.array_equal(c_recovered, d_recovered)


class TestSolutionBAndD:
    def test_solution_b_uses_reduced_bins(self):
        assert SZComplexCompressor(bound=1e-3).max_bins == 16384
        assert SZCompressor(bound=1e-3).max_bins == 65536

    def test_reshuffle_handles_odd_length(self, rng):
        data = rng.normal(size=333)
        recovered, _ = roundtrip(ReshuffleCompressor(bound=1e-3), data)
        assert _relative_errors(data, recovered).max() <= 1e-3

    def test_sz_complex_handles_odd_length(self, rng):
        data = rng.normal(size=101)
        recovered, _ = roundtrip(SZComplexCompressor(bound=1e-2), data)
        assert _relative_errors(data, recovered).max() <= 1e-2

    def test_complex_input(self, rng):
        state = rng.normal(size=256) + 1j * rng.normal(size=256)
        state /= np.linalg.norm(state)
        compressor = SZComplexCompressor(bound=1e-3)
        recovered, _ = roundtrip(compressor, state)
        original = state.view(np.float64)
        assert _relative_errors(original, recovered).max() <= 1e-3


class TestFPZIPPrecisionMapping:
    @pytest.mark.parametrize("bound,precision", sorted(PAPER_PRECISION_MAP.items()))
    def test_paper_precisions(self, bound, precision):
        compressor = FPZIPLikeCompressor.from_relative_bound(bound)
        assert compressor.precision == precision

    def test_true_bound_formula(self):
        assert FPZIPLikeCompressor(precision=22).bound == pytest.approx(2.0**-10)

    def test_bound_honoured_at_own_declared_bound(self, spiky_data):
        compressor = FPZIPLikeCompressor(precision=24)
        recovered, _ = roundtrip(compressor, spiky_data)
        assert _relative_errors(spiky_data, recovered).max() <= compressor.bound

    def test_precision_out_of_range(self):
        with pytest.raises(CompressorError):
            FPZIPLikeCompressor(precision=2)

    def test_higher_precision_higher_accuracy_lower_ratio(self, sup_snapshot):
        low = roundtrip(FPZIPLikeCompressor(precision=16), sup_snapshot)
        high = roundtrip(FPZIPLikeCompressor(precision=28), sup_snapshot)
        assert low[1].ratio > high[1].ratio
        assert low[1].max_rel_error > high[1].max_rel_error


class TestMisconfiguration:
    def test_sz_rejects_lossless_mode(self):
        with pytest.raises(CompressorError):
            SZCompressor(mode=ErrorBoundMode.LOSSLESS)

    def test_negative_bound_rejected(self):
        with pytest.raises(CompressorError):
            XorBitplaneCompressor(bound=-1.0)

    # (cross-codec blob rejection is covered for every family pair by
    # test_codecs_common.py::test_foreign_blob_rejected)

    def test_registry_solution_aliases(self):
        assert isinstance(get_compressor("A", bound=1e-3), SZCompressor)
        assert isinstance(get_compressor("B", bound=1e-3), SZComplexCompressor)
        assert isinstance(get_compressor("C", bound=1e-3), XorBitplaneCompressor)
        assert isinstance(get_compressor("D", bound=1e-3), ReshuffleCompressor)

    def test_registry_unknown_name(self):
        with pytest.raises(CompressorError):
            get_compressor("lz4-turbo")


class TestPaperComparisons:
    """Qualitative orderings the paper's evaluation reports."""

    def test_solution_c_faster_than_sz(self, sup_snapshot):
        _, sz_record = roundtrip(SZCompressor(bound=1e-3), sup_snapshot)
        _, c_record = roundtrip(XorBitplaneCompressor(bound=1e-3), sup_snapshot)
        assert c_record.compress_mb_per_s > sz_record.compress_mb_per_s
        assert c_record.decompress_mb_per_s > sz_record.decompress_mb_per_s

    def test_sz_beats_zfp_ratio_on_relative_bounds(self, qaoa_snapshot):
        # Figure 8: SZ achieves higher ratios than ZFP at the same pointwise
        # relative error bound on quantum state data.
        _, sz_record = roundtrip(SZCompressor(bound=1e-2), qaoa_snapshot)
        _, zfp_record = roundtrip(
            ZFPLikeCompressor(bound=1e-2, mode=ErrorBoundMode.RELATIVE), qaoa_snapshot
        )
        assert sz_record.ratio > zfp_record.ratio
