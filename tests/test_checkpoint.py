"""Tests for simulation checkpoint/restart (Section 3.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import qft_circuit
from repro.core import (
    CheckpointError,
    CompressedSimulator,
    SimulatorConfig,
    load_checkpoint,
    save_checkpoint,
)
from repro.statevector import simulate_statevector, state_fidelity


def _config(**kwargs) -> SimulatorConfig:
    defaults = dict(num_ranks=2, block_amplitudes=32)
    defaults.update(kwargs)
    return SimulatorConfig(**defaults)


class TestCheckpointRoundTrip:
    def test_resume_reproduces_uninterrupted_run(self, tmp_path):
        num_qubits = 8
        circuit = qft_circuit(num_qubits)
        gates = list(circuit)
        split = len(gates) // 2

        # Uninterrupted run.
        full = CompressedSimulator(num_qubits, _config())
        full.apply_circuit(gates)

        # Interrupted run: first half, checkpoint, restore, second half.
        first = CompressedSimulator(num_qubits, _config())
        first.apply_circuit(gates[:split])
        path = tmp_path / "ckpt.bin"
        written = save_checkpoint(first, path)
        assert written == path.stat().st_size
        resumed = load_checkpoint(path)
        resumed.apply_circuit(gates[split:])

        assert state_fidelity(resumed.statevector(), full.statevector()) == pytest.approx(
            1.0, abs=1e-10
        )
        assert resumed.gate_count == len(gates)

    def test_checkpoint_preserves_metadata(self, tmp_path):
        config = _config(start_lossless=False, error_levels=(1e-3, 1e-1))
        simulator = CompressedSimulator(7, config)
        simulator.apply_circuit(qft_circuit(7))
        path = tmp_path / "ckpt.bin"
        save_checkpoint(simulator, path)
        resumed = load_checkpoint(path)
        assert resumed.num_qubits == 7
        assert resumed.partition.num_ranks == 2
        assert resumed.controller.current_bound == 1e-3
        assert resumed.fidelity_tracker.num_gates == simulator.gate_count
        assert resumed.fidelity_tracker.lower_bound == pytest.approx(
            simulator.fidelity_tracker.lower_bound
        )

    def test_checkpoint_matches_dense_after_resume(self, tmp_path):
        circuit = qft_circuit(7)
        gates = list(circuit)
        simulator = CompressedSimulator(7, _config())
        simulator.apply_circuit(gates[:20])
        path = tmp_path / "ckpt.bin"
        save_checkpoint(simulator, path)
        resumed = load_checkpoint(path)
        resumed.apply_circuit(gates[20:])
        dense = simulate_statevector(circuit)
        assert np.allclose(resumed.statevector(), dense, atol=1e-10)

    def test_explicit_config_mismatch_rejected(self, tmp_path):
        simulator = CompressedSimulator(6, _config())
        path = tmp_path / "ckpt.bin"
        save_checkpoint(simulator, path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, config=SimulatorConfig(num_ranks=8, block_amplitudes=4))

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_checkpoint_of_fresh_simulator(self, tmp_path):
        simulator = CompressedSimulator(6, _config())
        path = tmp_path / "fresh.bin"
        save_checkpoint(simulator, path)
        resumed = load_checkpoint(path)
        assert resumed.probability_of(0) == pytest.approx(1.0)
        assert resumed.gate_count == 0


class TestCheckpointRobustness:
    """Torn, scribbled or padded files must surface as CheckpointError.

    Recovery code probes possibly-torn checkpoints (e.g. a crash mid-write
    of an in-run resilience snapshot), so *every* malformed prefix has to
    raise the one typed error — never succeed, never leak struct/json/pickle
    internals.
    """

    @pytest.fixture()
    def valid_checkpoint(self, tmp_path):
        simulator = CompressedSimulator(6, _config())
        simulator.apply_circuit(qft_circuit(6))
        path = tmp_path / "valid.bin"
        save_checkpoint(simulator, path)
        return path.read_bytes(), tmp_path

    def test_truncation_at_every_boundary_rejected(self, valid_checkpoint):
        payload, tmp_path = valid_checkpoint
        target = tmp_path / "torn.bin"
        for length in range(len(payload)):
            target.write_bytes(payload[:length])
            with pytest.raises(CheckpointError):
                load_checkpoint(target)

    def test_corrupted_metadata_json_rejected(self, valid_checkpoint):
        payload, tmp_path = valid_checkpoint
        # The metadata JSON starts right after the magic and its u32 length;
        # scribbling its first byte must not escape as a JSONDecodeError.
        scribbled = bytearray(payload)
        scribbled[8 + 4] ^= 0xFF
        target = tmp_path / "scribbled.bin"
        target.write_bytes(bytes(scribbled))
        with pytest.raises(CheckpointError):
            load_checkpoint(target)

    def test_trailing_bytes_rejected(self, valid_checkpoint):
        payload, tmp_path = valid_checkpoint
        target = tmp_path / "padded.bin"
        target.write_bytes(payload + b"\x00")
        with pytest.raises(CheckpointError, match="trailing"):
            load_checkpoint(target)

    def test_bad_magic_rejected(self, valid_checkpoint):
        payload, tmp_path = valid_checkpoint
        target = tmp_path / "magic.bin"
        target.write_bytes(b"QCKPT999" + payload[8:])
        with pytest.raises(CheckpointError):
            load_checkpoint(target)
