"""Unit tests for the simulated communicator and the gate planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import standard_gate
from repro.distributed import (
    Partition,
    QubitSegment,
    SimulatedCommunicator,
    plan_gate,
)


class TestSimulatedCommunicator:
    def test_send_accounting(self):
        comm = SimulatedCommunicator(4)
        comm.send(0, 1, 1000)
        comm.send(1, 2, 500)
        assert comm.stats.messages == 2
        assert comm.stats.bytes_sent == 1500

    def test_send_to_self_is_free(self):
        comm = SimulatedCommunicator(2)
        comm.send(1, 1, 999)
        assert comm.stats.messages == 0

    def test_exchange_blocks_counts_both_directions(self):
        comm = SimulatedCommunicator(2)
        comm.exchange_blocks(0, 1, 256)
        assert comm.stats.exchanges == 1
        assert comm.stats.messages == 2
        assert comm.stats.bytes_sent == 512

    def test_rank_range_checked(self):
        comm = SimulatedCommunicator(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, 10)

    def test_allreduce_sum(self):
        comm = SimulatedCommunicator(4)
        total = comm.allreduce_sum([1.0, 2.0, 3.0, 4.0])
        assert total == 10.0
        assert comm.stats.allreduces == 1
        assert comm.stats.bytes_sent > 0

    def test_allreduce_wrong_length(self):
        comm = SimulatedCommunicator(4)
        with pytest.raises(ValueError):
            comm.allreduce_sum([1.0, 2.0])

    def test_bandwidth_model_accumulates_time(self):
        comm = SimulatedCommunicator(2, bandwidth_bytes_per_s=1e6, latency_s=1e-3)
        comm.exchange_blocks(0, 1, 500_000)
        # 1 MB at 1 MB/s = 1 s, plus 2 messages * 1 ms latency.
        assert comm.modelled_seconds == pytest.approx(1.002)

    def test_reset(self):
        comm = SimulatedCommunicator(2, bandwidth_bytes_per_s=1e6)
        comm.exchange_blocks(0, 1, 100)
        comm.barrier()
        comm.reset()
        assert comm.stats.bytes_sent == 0
        assert comm.stats.barriers == 0
        assert comm.modelled_seconds == 0.0

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            SimulatedCommunicator(0)


class TestGatePlanner:
    def setup_method(self):
        # 8 qubits, 4 ranks, 16-amplitude blocks:
        # offsets bits 0-3, block bits 4-5 wait -> blocks_per_rank = 64/16 = 4
        # offsets = bits 0-3, block index = bits 4-5, rank = bits 6-7.
        self.partition = Partition(num_qubits=8, num_ranks=4, block_amplitudes=16)

    def test_local_gate_touches_every_block_once(self):
        plan = plan_gate(self.partition, standard_gate("h", 2))
        assert plan.segment is QubitSegment.LOCAL
        assert len(plan.tasks) == self.partition.total_blocks
        assert all(task.second is None for task in plan.tasks)
        assert plan.exchange_count == 0

    def test_block_gate_pairs_blocks_within_rank(self):
        plan = plan_gate(self.partition, standard_gate("h", 4))
        assert plan.segment is QubitSegment.BLOCK
        assert len(plan.tasks) == self.partition.num_ranks * 2  # 4 blocks -> 2 pairs
        for task in plan.tasks:
            (r1, b1), (r2, b2) = task.first, task.second
            assert r1 == r2
            assert b2 == b1 | 1  # block bit 0
            assert not task.crosses_ranks

    def test_rank_gate_pairs_ranks_and_counts_exchanges(self):
        plan = plan_gate(self.partition, standard_gate("h", 6))
        assert plan.segment is QubitSegment.RANK
        assert all(task.crosses_ranks for task in plan.tasks)
        # 4 ranks -> 2 rank pairs, each exchanging every one of 4 blocks.
        assert len(plan.tasks) == 2 * 4
        assert plan.exchange_count == 8

    def test_local_control_is_deferred_to_executor(self):
        plan = plan_gate(self.partition, standard_gate("x", 5, controls=(1,)))
        assert plan.local_controls == (1,)
        # No pruning happened: control is below the block boundary.
        assert len(plan.tasks) == self.partition.num_ranks * 2

    def test_block_control_prunes_half_the_blocks(self):
        # Control on qubit 4 (block bit 0): only blocks with bit0 = 1 update.
        plan = plan_gate(self.partition, standard_gate("x", 0, controls=(4,)))
        assert plan.segment is QubitSegment.LOCAL
        assert len(plan.tasks) == self.partition.total_blocks // 2
        for task in plan.tasks:
            _, block = task.first
            assert block & 0b01

    def test_rank_control_prunes_half_the_ranks(self):
        plan = plan_gate(self.partition, standard_gate("x", 0, controls=(6,)))
        assert len(plan.tasks) == self.partition.total_blocks // 2
        for task in plan.tasks:
            rank, _ = task.first
            assert rank & 0b01

    def test_toffoli_with_mixed_controls(self):
        # Controls: one local (qubit 2), one rank-level (qubit 7); target block-level.
        gate = standard_gate("x", 5, controls=(2, 7))
        plan = plan_gate(self.partition, gate)
        assert plan.local_controls == (2,)
        for task in plan.tasks:
            rank, _ = task.first
            assert rank & 0b10  # rank bit 1 (qubit 7) must be set

    def test_gate_outside_partition_rejected(self):
        with pytest.raises(ValueError):
            plan_gate(self.partition, standard_gate("h", 9))

    def test_touched_buffers_property(self):
        local = plan_gate(self.partition, standard_gate("h", 0))
        paired = plan_gate(self.partition, standard_gate("h", 7))
        assert local.touched_buffers == self.partition.total_blocks
        assert paired.touched_buffers == 2 * len(paired.tasks)
