"""Property-based tests (hypothesis) for the compression substrate.

These check the two invariants everything else relies on, over adversarial
inputs the example-based tests would never enumerate:

* lossless round trips are bit-exact,
* every lossy compressor honours its declared pointwise error bound, and
* the Huffman codec and the bit-plane primitives are exact inverses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression import (
    ErrorBoundMode,
    LosslessCompressor,
    ReshuffleCompressor,
    SZComplexCompressor,
    SZCompressor,
    XorBitplaneCompressor,
    ZFPLikeCompressor,
    huffman,
)
from repro.compression import bitplane

# Finite, not-too-extreme doubles: compressors are specified for amplitude
# data, whose magnitudes live comfortably inside [1e-300, 1e+300].
_finite_floats = st.floats(
    min_value=-1e100,
    max_value=1e100,
    allow_nan=False,
    allow_infinity=False,
    width=64,
)

_float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=400),
    elements=_finite_floats,
)

_bounds = st.sampled_from([1e-1, 1e-2, 1e-3, 1e-4, 1e-5])


def _max_relative_error(original: np.ndarray, recovered: np.ndarray) -> float:
    nonzero = original != 0
    if not nonzero.any():
        return 0.0
    return float(
        np.max(np.abs(recovered[nonzero] - original[nonzero]) / np.abs(original[nonzero]))
    )


class TestLosslessProperties:
    @given(data=_float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_is_bit_exact(self, data):
        compressor = LosslessCompressor()
        recovered = compressor.decompress(compressor.compress(data))
        assert np.array_equal(recovered, data)


class TestLossyBoundProperties:
    @given(data=_float_arrays, bound=_bounds)
    @settings(max_examples=40, deadline=None)
    def test_xor_bitplane_respects_bound(self, data, bound):
        compressor = XorBitplaneCompressor(bound=bound)
        recovered = compressor.decompress(compressor.compress(data))
        assert _max_relative_error(data, recovered) <= bound * (1 + 1e-9)

    @given(data=_float_arrays, bound=_bounds)
    @settings(max_examples=40, deadline=None)
    def test_xor_bitplane_never_grows_magnitude(self, data, bound):
        compressor = XorBitplaneCompressor(bound=bound)
        recovered = compressor.decompress(compressor.compress(data))
        assert np.all(np.abs(recovered) <= np.abs(data))

    @given(data=_float_arrays, bound=_bounds)
    @settings(max_examples=30, deadline=None)
    def test_reshuffle_respects_bound(self, data, bound):
        compressor = ReshuffleCompressor(bound=bound)
        recovered = compressor.decompress(compressor.compress(data))
        assert _max_relative_error(data, recovered) <= bound * (1 + 1e-9)

    @given(data=_float_arrays, bound=st.sampled_from([1e-1, 1e-2, 1e-3]))
    @settings(max_examples=25, deadline=None)
    def test_sz_respects_relative_bound(self, data, bound):
        compressor = SZCompressor(bound=bound)
        recovered = compressor.decompress(compressor.compress(data))
        assert _max_relative_error(data, recovered) <= bound * (1 + 1e-9)

    @given(data=_float_arrays, bound=st.sampled_from([1e-1, 1e-3]))
    @settings(max_examples=25, deadline=None)
    def test_sz_complex_respects_relative_bound(self, data, bound):
        compressor = SZComplexCompressor(bound=bound)
        recovered = compressor.decompress(compressor.compress(data))
        assert _max_relative_error(data, recovered) <= bound * (1 + 1e-9)

    @given(
        data=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=200),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        ),
        bound=st.sampled_from([1e-1, 1e-2, 1e-3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_zfp_respects_absolute_bound(self, data, bound):
        compressor = ZFPLikeCompressor(bound=bound, mode=ErrorBoundMode.ABSOLUTE)
        recovered = compressor.decompress(compressor.compress(data))
        assert float(np.max(np.abs(recovered - data))) <= bound * (1 + 1e-9)

    @given(data=_float_arrays, bound=_bounds)
    @settings(max_examples=30, deadline=None)
    def test_preserved_zero_positions(self, data, bound):
        # Zero amplitudes (the dominant value early in a simulation) must stay
        # exactly zero under Solution C, or the relative bound is meaningless.
        data = data.copy()
        data[::2] = 0.0
        compressor = XorBitplaneCompressor(bound=bound)
        recovered = compressor.decompress(compressor.compress(data))
        assert np.all(recovered[::2] == 0.0)


class TestCodecProperties:
    @given(
        symbols=hnp.arrays(
            dtype=np.int64,
            shape=st.integers(min_value=0, max_value=500),
            elements=st.integers(min_value=-(2**40), max_value=2**40),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_huffman_roundtrip(self, symbols):
        assert np.array_equal(huffman.decode(huffman.encode(symbols)), symbols)

    @given(
        words=hnp.arrays(
            dtype=np.uint64,
            shape=st.integers(min_value=0, max_value=300),
            elements=st.integers(min_value=0, max_value=2**64 - 1),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_xor_delta_roundtrip(self, words):
        assert np.array_equal(
            bitplane.xor_delta_decode(bitplane.xor_delta_encode(words)), words
        )

    @given(
        words=hnp.arrays(
            dtype=np.uint64,
            shape=st.integers(min_value=1, max_value=200),
            elements=st.integers(min_value=0, max_value=2**64 - 1),
        ),
        keep_bytes=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_leading_zero_stream_roundtrip(self, words, keep_bytes):
        # Only the kept leading bytes are representable; mask the rest first,
        # mirroring what the truncation stage guarantees in the real pipeline.
        if keep_bytes < 8:
            mask = np.uint64(~((1 << (8 * (8 - keep_bytes))) - 1) & 0xFFFFFFFFFFFFFFFF)
            words = words & mask
        codes, suffix = bitplane.pack_leading_zero_stream(words, keep_bytes)
        recovered = bitplane.unpack_leading_zero_stream(
            codes, suffix, words.size, keep_bytes
        )
        assert np.array_equal(recovered, words)

    @given(
        data=_float_arrays,
        keep_bits=st.integers(min_value=12, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_truncation_idempotent(self, data, keep_bits):
        once = bitplane.truncate_bitplanes(data, keep_bits)
        twice = bitplane.truncate_bitplanes(once, keep_bits)
        assert np.array_equal(once, twice)
