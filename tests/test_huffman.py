"""Unit tests for the canonical Huffman codec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import huffman
from repro.compression.interface import CompressorError


class TestRoundTrip:
    def test_small_alphabet(self):
        symbols = np.array([0, 0, 0, 1, 1, 2] * 50, dtype=np.int64)
        blob = huffman.encode(symbols)
        assert np.array_equal(huffman.decode(blob), symbols)

    def test_single_symbol_stream(self):
        symbols = np.full(1000, 7, dtype=np.int64)
        blob = huffman.encode(symbols)
        assert np.array_equal(huffman.decode(blob), symbols)
        # Highly redundant stream should be tiny.
        assert len(blob) < 200

    def test_two_symbols(self):
        symbols = np.array([5, -5] * 100, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(symbols)), symbols)

    def test_negative_and_large_symbols(self):
        symbols = np.array([-(2**40), 0, 2**40, 17, -3] * 20, dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(symbols)), symbols)

    def test_empty_stream(self):
        symbols = np.zeros(0, dtype=np.int64)
        assert huffman.decode(huffman.encode(symbols)).size == 0

    def test_single_element(self):
        symbols = np.array([42], dtype=np.int64)
        assert np.array_equal(huffman.decode(huffman.encode(symbols)), symbols)

    def test_random_streams(self, rng):
        for alphabet in (2, 16, 300):
            symbols = rng.integers(-alphabet, alphabet, size=5000).astype(np.int64)
            assert np.array_equal(huffman.decode(huffman.encode(symbols)), symbols)

    def test_skewed_distribution_compresses(self, rng):
        # Geometric-ish distribution: most symbols are 0, a few are large.
        symbols = rng.geometric(0.7, size=20000).astype(np.int64)
        blob = huffman.encode(symbols)
        assert len(blob) < symbols.nbytes / 4

    def test_rejects_2d_input(self):
        with pytest.raises(CompressorError):
            huffman.encode(np.zeros((3, 3), dtype=np.int64))

    def test_truncated_stream_raises(self):
        symbols = np.arange(100, dtype=np.int64)
        blob = huffman.encode(symbols)
        with pytest.raises(Exception):
            huffman.decode(blob[: len(blob) // 2])

    def test_codec_class_and_module_functions_agree(self):
        symbols = np.array([1, 2, 3, 1, 2, 1], dtype=np.int64)
        codec = huffman.HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)
        assert np.array_equal(huffman.decode(codec.encode(symbols)), symbols)
