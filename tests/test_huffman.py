"""Unit tests for the canonical Huffman codec.

The ``huff`` fixture builds the codec with the module-scoped ``engine``
fixture from conftest, so every round-trip here runs once per kernel engine
(the numba leg xfails when numba is not installed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import huffman
from repro.compression.interface import CompressorError


@pytest.fixture(scope="module")
def huff(engine) -> huffman.HuffmanCodec:
    """A Huffman codec bound to the current kernel engine."""

    return huffman.HuffmanCodec(engine=engine)


class TestRoundTrip:
    def test_small_alphabet(self, huff):
        symbols = np.array([0, 0, 0, 1, 1, 2] * 50, dtype=np.int64)
        blob = huff.encode(symbols)
        assert np.array_equal(huff.decode(blob), symbols)

    def test_single_symbol_stream(self, huff):
        symbols = np.full(1000, 7, dtype=np.int64)
        blob = huff.encode(symbols)
        assert np.array_equal(huff.decode(blob), symbols)
        # Highly redundant stream should be tiny.
        assert len(blob) < 200

    def test_two_symbols(self, huff):
        symbols = np.array([5, -5] * 100, dtype=np.int64)
        assert np.array_equal(huff.decode(huff.encode(symbols)), symbols)

    def test_negative_and_large_symbols(self, huff):
        symbols = np.array([-(2**40), 0, 2**40, 17, -3] * 20, dtype=np.int64)
        assert np.array_equal(huff.decode(huff.encode(symbols)), symbols)

    def test_empty_stream(self, huff):
        symbols = np.zeros(0, dtype=np.int64)
        assert huff.decode(huff.encode(symbols)).size == 0

    def test_single_element(self, huff):
        symbols = np.array([42], dtype=np.int64)
        assert np.array_equal(huff.decode(huff.encode(symbols)), symbols)

    def test_random_streams(self, huff, rng):
        for alphabet in (2, 16, 300):
            symbols = rng.integers(-alphabet, alphabet, size=5000).astype(np.int64)
            assert np.array_equal(huff.decode(huff.encode(symbols)), symbols)

    def test_skewed_distribution_compresses(self, huff, rng):
        # Geometric-ish distribution: most symbols are 0, a few are large.
        symbols = rng.geometric(0.7, size=20000).astype(np.int64)
        blob = huff.encode(symbols)
        assert len(blob) < symbols.nbytes / 4

    def test_rejects_2d_input(self, huff):
        with pytest.raises(CompressorError):
            huff.encode(np.zeros((3, 3), dtype=np.int64))

    def test_truncated_stream_raises(self, huff):
        symbols = np.arange(100, dtype=np.int64)
        blob = huff.encode(symbols)
        with pytest.raises(Exception):
            huff.decode(blob[: len(blob) // 2])

    def test_codec_class_and_module_functions_agree(self, huff):
        symbols = np.array([1, 2, 3, 1, 2, 1], dtype=np.int64)
        codec = huffman.HuffmanCodec()
        assert np.array_equal(codec.decode(codec.encode(symbols)), symbols)
        assert np.array_equal(huffman.decode(codec.encode(symbols)), symbols)
        # Cross-engine: module functions (default engine) read the fixture
        # codec's blobs and vice versa.
        assert np.array_equal(huffman.decode(huff.encode(symbols)), symbols)
        assert np.array_equal(huff.decode(huffman.encode(symbols)), symbols)
