"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs cannot build an editable wheel.  Keeping a classic
``setup.py`` (and no ``[build-system]`` table in ``pyproject.toml``) lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path, which
works without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Full-state quantum circuit simulation by using data compression "
        "(SC'19 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
