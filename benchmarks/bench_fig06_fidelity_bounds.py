"""Figure 6 — minimum fidelity bound vs number of gates at each error level.

Analytic reproduction of the ``F >= (1 - delta)^g`` curves for the five
pointwise relative error levels, sampled at the same 0..5000 gate range the
paper plots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_series
from repro.core import fidelity_curve

ERROR_LEVELS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
GATE_COUNTS = (0, 100, 250, 500, 1000, 2000, 3000, 4000, 5000)


def test_fig06_fidelity_lower_bounds(benchmark, emit):
    curves = benchmark(
        lambda: {level: fidelity_curve(5000, level) for level in ERROR_LEVELS}
    )

    series = {
        f"PWR={level:g}": [float(curves[level][g]) for g in GATE_COUNTS]
        for level in ERROR_LEVELS
    }
    emit(
        "Figure 6: minimum fidelity bound vs number of gates",
        format_series("gates", series, GATE_COUNTS)
        + "\n\npaper shape: PWR=1e-5 stays ~0.95 at 5000 gates, 1e-3 decays to"
        "\n~e^-5, 1e-1 collapses within tens of gates -- identical here since"
        "\nthe curve is the same closed form.",
    )

    assert curves[1e-5][5000] > 0.95
    assert curves[1e-3][5000] == pytest.approx((1 - 1e-3) ** 5000, rel=1e-9)
    assert curves[1e-1][100] < 1e-4
    for level in ERROR_LEVELS:
        assert np.all(np.diff(curves[level]) <= 0)
