"""Thread vs process executor scaling on a codec-bound workload.

PR 2 left an honest caveat in the codec bench: NumPy fancy-index gathers —
the heart of the table-driven Huffman decoder — hold the GIL, so
``num_workers`` buys almost nothing on codec-bound (SZ-path) workloads under
the *thread* executor.  The process executor exists to break exactly that
ceiling: warm worker processes, shared-memory blob transport, true multi-core
codec work.  This bench pins the comparison to numbers:

* wall-clock and speedup-vs-``num_workers=1`` curves for the thread and the
  process executor on a codec-bound QFT-style workload (SZ codec on the hot
  path, block cache off so every task pays the full round trip), with
  bit-identity across every executor/worker combination asserted in all
  modes, and
* batched ``repro.run()`` fan-out: a 9-circuit QAOA angle grid executed
  sequentially and with ``parallel="process"``, results required identical
  up to measured wall-clock metadata.

Results land in ``benchmarks/results/BENCH_parallel.json``.  The speedup
floor (process executor >= 2x at 4 workers, where the thread executor is
~1x) is only enforced in full mode on hosts with >= 4 effective CPUs —
on a single-CPU container the curve is flat by construction and the run
still verifies cross-tier determinism; ``meta.available_cpus`` records
which regime produced the numbers (affinity-aware, not raw
``os.cpu_count()``).

Set ``REPRO_BENCH_QUICK=1`` for a CI-sized smoke run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

import repro
from repro.analysis import format_table
from repro.applications import (
    maxcut_observable,
    qaoa_maxcut_circuit,
    random_regular_graph,
)
from repro.circuits import QuantumCircuit
from repro.core import CompressedSimulator, SimulatorConfig, effective_cpu_count
from repro.resilience import FaultPolicy

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_parallel.json"

NUM_QUBITS = 8 if QUICK else 12
BLOCK_AMPLITUDES = 32 if QUICK else 256
LAYERS = 2 if QUICK else 4
REPEATS = 1 if QUICK else 2
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0
QAOA_QUBITS = 8 if QUICK else 12
FANOUT_WORKERS = 4
#: In-run resilience checkpoint cadence sweep (waves between snapshots;
#: 0 = checkpointing off).
CHECKPOINT_INTERVALS = (0, 8, 32)


def _merge_json(section: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    data["meta"] = {
        "quick": QUICK,
        "available_cpus": effective_cpu_count(),
        "num_qubits": NUM_QUBITS,
        "block_amplitudes": BLOCK_AMPLITUDES,
        "floor": SPEEDUP_FLOOR,
        "floor_enforced": _floor_enforced(),
    }
    JSON_PATH.write_text(json.dumps(data, indent=2))


def _floor_enforced() -> bool:
    return not QUICK and effective_cpu_count() >= 4


def codec_bound_circuit(num_qubits: int, layers: int) -> QuantumCircuit:
    """QFT-style rotation layers: every gate pays an SZ round trip per block."""

    circuit = QuantumCircuit(num_qubits, name=f"codec_bound_{num_qubits}")
    for layer in range(layers):
        for qubit in range(num_qubits):
            circuit.h(qubit)
            circuit.rz(0.3 * (qubit + 1 + layer), qubit)
    return circuit


def _run(circuit, *, executor: str, workers: int) -> tuple[float, np.ndarray]:
    """Best-of-``REPEATS`` wall-clock (noise on shared runners) + final state."""

    config = SimulatorConfig(
        num_ranks=2,
        block_amplitudes=BLOCK_AMPLITUDES,
        lossy_compressor="sz",
        start_lossless=False,
        use_block_cache=False,  # every task pays the full codec round trip
        fusion_enabled=False,  # keep the gate count (and task count) fixed
        num_workers=workers,
        executor=executor,
    )
    best = float("inf")
    with CompressedSimulator(NUM_QUBITS, config) as simulator:
        for _ in range(REPEATS):
            simulator.reset()
            start = time.perf_counter()
            simulator.apply_circuit(circuit)
            best = min(best, time.perf_counter() - start)
        state = simulator.statevector()
    return best, state


def test_executor_scaling_curves(emit):
    """Thread vs process speedup curves; bit-identity enforced in all modes."""

    circuit = codec_bound_circuit(NUM_QUBITS, LAYERS)
    _run(circuit, executor="thread", workers=1)  # warm-up (allocator, zlib)

    curves: dict[str, dict[int, float]] = {}
    baseline_state: np.ndarray | None = None
    for executor in ("thread", "process"):
        curves[executor] = {}
        for workers in WORKER_COUNTS:
            seconds, state = _run(circuit, executor=executor, workers=workers)
            curves[executor][workers] = seconds
            if baseline_state is None:
                baseline_state = state
            else:
                # The acceptance contract: every tier, every width, the same
                # bytes-for-bytes final state.
                assert np.array_equal(baseline_state, state), (executor, workers)

    baseline = curves["thread"][1]
    rows = [
        {
            "executor": executor,
            "num_workers": workers,
            "seconds": f"{seconds:.3f}",
            "speedup": f"{baseline / seconds:.2f}x",
        }
        for executor in ("thread", "process")
        for workers, seconds in curves[executor].items()
    ]
    available = effective_cpu_count()
    _merge_json(
        "executor_scaling",
        {
            "workload": {
                "circuit": circuit.name,
                "gates": len(circuit),
                "codec": "sz",
            },
            "baseline_seconds": baseline,
            "curves": {
                executor: [
                    {
                        "num_workers": workers,
                        "seconds": seconds,
                        "speedup": baseline / seconds,
                    }
                    for workers, seconds in curve.items()
                ]
                for executor, curve in curves.items()
            },
        },
    )
    emit(
        f"Executor scaling, codec-bound SZ workload ({NUM_QUBITS} qubits, "
        f"{len(circuit)} gates, {available} CPU(s) available)",
        format_table(rows)
        + (
            "\nNOTE: fewer than 4 CPUs available — the curves are flat by "
            "construction; this run only checks cross-tier bit-identity."
            if available < 4
            else f"\nfloor: process executor >= {SPEEDUP_FLOOR}x at 4 workers"
        ),
    )
    if _floor_enforced():
        process_speedup = baseline / curves["process"][4]
        assert process_speedup >= SPEEDUP_FLOOR, curves


def test_recovery_overhead(emit):
    """Cost of in-run resilience checkpoints on the ranked tier.

    Sweeps ``FaultPolicy.checkpoint_interval_waves`` (off / 32 / 8 waves)
    on a fault-free multi-rank run: the delta against interval 0 is the
    pure overhead a user pays for a bounded replay window after a rank
    death.  Bit-identity across all intervals is asserted in every mode —
    checkpointing must never perturb the simulation itself.
    """

    circuit = codec_bound_circuit(NUM_QUBITS, LAYERS)
    _run(circuit, executor="thread", workers=1)  # warm-up (allocator, zlib)
    rows = []
    baseline_state: np.ndarray | None = None
    baseline_seconds: float | None = None
    for interval in CHECKPOINT_INTERVALS:
        policy = FaultPolicy(max_retries=1, checkpoint_interval_waves=interval)
        config = SimulatorConfig(
            num_ranks=2,
            block_amplitudes=BLOCK_AMPLITUDES,
            comm="process",
            fusion_enabled=False,  # keep the wave count fixed across runs
            fault_policy=policy,
        )
        best = float("inf")
        with CompressedSimulator(NUM_QUBITS, config) as simulator:
            for _ in range(REPEATS):
                simulator.reset()
                start = time.perf_counter()
                simulator.apply_circuit(circuit)
                best = min(best, time.perf_counter() - start)
            state = simulator.statevector()
            recovery = simulator.report().recovery
        if baseline_state is None:
            baseline_state, baseline_seconds = state, best
        else:
            # Checkpointing is pure bookkeeping: same bytes, every interval.
            assert np.array_equal(baseline_state, state), interval
        rows.append(
            {
                "interval_waves": interval,
                "seconds": best,
                "overhead": best / baseline_seconds - 1.0,
                "checkpoints_written": (
                    (recovery or {}).get("checkpoints_written", 0)
                ),
            }
        )

    _merge_json(
        "recovery_overhead",
        {
            "workload": {"circuit": circuit.name, "gates": len(circuit)},
            "num_ranks": 2,
            "intervals": rows,
        },
    )
    emit(
        f"Resilience checkpoint overhead, ranked tier ({NUM_QUBITS} qubits, "
        f"{len(circuit)} gates, 2 ranks)",
        format_table(
            [
                {
                    "checkpoint interval": (
                        "off" if row["interval_waves"] == 0
                        else f'every {row["interval_waves"]} waves'
                    ),
                    "seconds": f'{row["seconds"]:.3f}',
                    "overhead": f'{100.0 * row["overhead"]:+.1f}%',
                    "checkpoints": row["checkpoints_written"],
                }
                for row in rows
            ]
        )
        + "\nbit-identity across all intervals asserted",
    )


def _strip_timing(data):
    if isinstance(data, dict):
        return {
            key: (
                0.0
                if "seconds" in key or key.endswith("_fraction")
                else _strip_timing(value)
            )
            for key, value in data.items()
        }
    if isinstance(data, list):
        return [_strip_timing(value) for value in data]
    return data


def test_batched_run_fanout(emit):
    """Sequential vs ``parallel="process"`` on a 9-circuit QAOA batch."""

    graph = random_regular_graph(QAOA_QUBITS, degree=3, seed=23)
    observable = maxcut_observable(graph)
    circuits = [
        qaoa_maxcut_circuit(graph, [gamma], [beta])
        for gamma in (0.2, 0.4, 0.6)
        for beta in (0.4, 0.8, 1.2)
    ]

    start = time.perf_counter()
    sequential = repro.run(circuits, shots=128, observables=observable, seed=7)
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = repro.run(
        circuits,
        shots=128,
        observables=observable,
        seed=7,
        parallel="process",
        max_parallel=FANOUT_WORKERS,
    )
    parallel_s = time.perf_counter() - start

    identical = _strip_timing(json.loads(sequential.to_json())) == _strip_timing(
        json.loads(parallel.to_json())
    )
    assert identical  # enforced in every mode

    speedup = sequential_s / max(parallel_s, 1e-9)
    _merge_json(
        "batch_fanout",
        {
            "circuits": len(circuits),
            "qubits": QAOA_QUBITS,
            "workers": FANOUT_WORKERS,
            "sequential_seconds": sequential_s,
            "parallel_seconds": parallel_s,
            "speedup": speedup,
            "results_identical": identical,
        },
    )
    emit(
        f"Batched repro.run() fan-out ({len(circuits)} QAOA circuits, "
        f"{QAOA_QUBITS} qubits, {FANOUT_WORKERS} workers)",
        format_table(
            [
                {"mode": "sequential", "seconds": f"{sequential_s:.3f}"},
                {
                    "mode": f'parallel="process" ({FANOUT_WORKERS} workers)',
                    "seconds": f"{parallel_s:.3f}",
                },
            ]
        )
        + f"\nspeedup: {speedup:.2f}x; results identical up to wall-clock "
        "metadata: " + str(identical),
    )
