"""Figure 9 — illustration of the spikiness of quantum state data.

The paper plots raw amplitude values (a full window plus two 50-point zooms)
for qaoa_36 and sup_36 to show the data has no spatial smoothness.  The bench
prints summary statistics of the same windows plus the two scalar smoothness
measures used elsewhere in the repo, and checks the quantitative claim: the
lag-1 autocorrelation is near zero (spiky), unlike a smooth reference signal.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, spikiness_stats, value_windows


def _window_rows(name: str, data: np.ndarray) -> list[dict]:
    rows = []
    for label, window in value_windows(data).items():
        rows.append(
            {
                "dataset": name,
                "window": label,
                "min": float(window.min()),
                "max": float(window.max()),
                "std": float(window.std()),
                "mean_abs_diff": float(np.abs(np.diff(window)).mean()),
            }
        )
    return rows


def test_fig09_value_spikiness(benchmark, emit, qaoa_snapshot, sup_snapshot):
    qaoa_stats = benchmark(lambda: spikiness_stats(qaoa_snapshot))
    sup_stats = spikiness_stats(sup_snapshot)
    smooth_reference = spikiness_stats(np.sin(np.linspace(0, 6 * np.pi, qaoa_snapshot.size)))

    rows = _window_rows("qaoa", qaoa_snapshot) + _window_rows("sup", sup_snapshot)
    summary = [
        {
            "dataset": "qaoa",
            "lag1_autocorr": qaoa_stats.lag1_autocorrelation,
            "normalized_roughness": qaoa_stats.normalized_roughness,
        },
        {
            "dataset": "sup",
            "lag1_autocorr": sup_stats.lag1_autocorrelation,
            "normalized_roughness": sup_stats.normalized_roughness,
        },
        {
            "dataset": "smooth sine (reference)",
            "lag1_autocorr": smooth_reference.lag1_autocorrelation,
            "normalized_roughness": smooth_reference.normalized_roughness,
        },
    ]
    emit(
        "Figure 9: spikiness of quantum circuit simulation data",
        format_table(rows)
        + "\n\nsmoothness summary\n"
        + format_table(summary)
        + "\n\npaper shape: amplitude streams look like noise (no neighbour"
        "\ncorrelation), which is why prediction/transform compressors lose.",
    )

    assert abs(qaoa_stats.lag1_autocorrelation) < 0.3
    assert abs(sup_stats.lag1_autocorrelation) < 0.3
    assert smooth_reference.lag1_autocorrelation > 0.99
    assert qaoa_stats.normalized_roughness > 10 * smooth_reference.normalized_roughness
