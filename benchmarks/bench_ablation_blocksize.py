"""Ablation — block size (amplitudes per compressed block).

The paper fixes 2^20 amplitudes (16 MB) per block.  The block size trades
compression effectiveness and per-block overhead (bigger blocks compress
better and amortise headers) against staging-memory cost and gate-scheduling
granularity (two decompressed blocks per rank must fit in fast memory,
Eq. 8).  The ablation sweeps the block size for a fixed workload and reports
compression ratio, scratch footprint and runtime.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.applications import qft_benchmark_circuit
from repro.core import CompressedSimulator, SimulatorConfig

NUM_QUBITS = 13
BLOCK_SIZES = (64, 256, 1024, 4096)


def _run(block_amplitudes: int) -> dict:
    config = SimulatorConfig(
        num_ranks=2,
        block_amplitudes=block_amplitudes,
        start_lossless=False,
        error_levels=(1e-3, 1e-2, 1e-1),
        use_block_cache=False,
    )
    simulator = CompressedSimulator(NUM_QUBITS, config)
    start = time.perf_counter()
    report = simulator.apply_circuit(qft_benchmark_circuit(NUM_QUBITS, seed=4))
    elapsed = time.perf_counter() - start
    return {
        "block_amplitudes": block_amplitudes,
        "seconds": elapsed,
        "min_ratio": report.min_compression_ratio,
        "final_ratio": simulator.state.compression_ratio(),
        "scratch_MiB": 2 * block_amplitudes * 16 * 2 / 2**20,
    }


def test_ablation_block_size(benchmark, emit):
    rows = [_run(size) for size in BLOCK_SIZES]
    benchmark.pedantic(_run, args=(BLOCK_SIZES[1],), rounds=1, iterations=1)

    emit(
        "Ablation: block size sweep (QFT-13, Solution C at 1e-3)",
        format_table(rows)
        + "\n\nexpected: larger blocks amortise per-block overhead (better"
        "\nratio) at the cost of a larger decompression staging area.",
    )

    # Compression effectiveness improves (or at least does not degrade) with
    # larger blocks, while the scratch cost grows linearly.
    assert rows[-1]["final_ratio"] >= rows[0]["final_ratio"] * 0.95
    assert rows[-1]["scratch_MiB"] > rows[0]["scratch_MiB"]
