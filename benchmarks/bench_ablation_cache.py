"""Ablation — compressed block cache on/off (design choice of Section 3.4).

The cache exploits amplitude redundancy: it should help circuits whose blocks
repeat (Grover/GHZ-like structure) and do essentially nothing — beyond lookup
overhead, which the auto-disable rule bounds — for random circuits, which is
exactly why the paper disables it when the hit rate stays at zero.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.applications import grover_circuit, random_supremacy_circuit
from repro.core import CompressedSimulator, SimulatorConfig


def _run(circuit, num_qubits: int, use_cache: bool) -> dict:
    config = SimulatorConfig(
        num_ranks=2,
        block_amplitudes=(1 << num_qubits) // 2 // 8,
        use_block_cache=use_cache,
    )
    simulator = CompressedSimulator(num_qubits, config)
    start = time.perf_counter()
    report = simulator.apply_circuit(circuit)
    elapsed = time.perf_counter() - start
    lookups = report.cache_hits + report.cache_misses
    return {
        "seconds": elapsed,
        "hits": report.cache_hits,
        "misses": report.cache_misses,
        "hit_rate": report.cache_hits / lookups if lookups else 0.0,
        "disabled": bool(simulator.cache and not simulator.cache.enabled),
    }


def test_ablation_block_cache(benchmark, emit):
    grover = grover_circuit(12, marked=100, iterations=3)
    random_circ = random_supremacy_circuit(3, 4, depth=30, seed=3)

    results = {
        ("grover", True): _run(grover, 12, True),
        ("grover", False): _run(grover, 12, False),
        ("random", True): _run(random_circ, 12, True),
        ("random", False): _run(random_circ, 12, False),
    }
    benchmark.pedantic(_run, args=(grover, 12, True), rounds=1, iterations=1)

    rows = [
        {
            "workload": workload,
            "cache": "on" if cache else "off",
            **{k: v for k, v in result.items()},
        }
        for (workload, cache), result in results.items()
    ]
    emit(
        "Ablation: compressed block cache on/off",
        format_table(rows)
        + "\n\nexpected: the structured (Grover) workload keeps a much higher"
        "\nhit rate than the random circuit, whose blocks stop repeating once"
        "\nthe T gates differentiate the amplitudes (the paper disables the"
        "\ncache entirely in that regime).",
    )

    assert results[("grover", True)]["hits"] > 0
    # Grover's amplitude redundancy gives it a clearly higher hit rate.
    assert (
        results[("grover", True)]["hit_rate"]
        > 1.5 * results[("random", True)]["hit_rate"]
    )
    # With the cache off there are never any lookups.
    assert results[("grover", False)]["hits"] == 0
    assert results[("random", False)]["hits"] == 0
