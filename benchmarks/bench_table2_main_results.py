"""Table 2 — main results: Grover / random circuit sampling / QAOA / QFT runs.

For each benchmark application the paper reports the theoretical memory
requirement, gate count, node count, memory actually used, total time and its
compression / decompression / communication / computation breakdown, time per
gate, simulation fidelity and the minimum compression ratio.

This bench runs scaled-down instances of all four applications through the
unified ``repro.run()`` entry point (compressed backend) with a memory
budget well below the dense requirement
(so the adaptive lossless->lossy pipeline is exercised exactly as on Theta)
and prints the same columns.  The qualitative orderings the paper draws from
the table are asserted:

* Grover compresses enormously (orders of magnitude better than the others)
  and keeps fidelity ~1,
* the structured applications (Grover, QAOA, QFT) compress better than the
  supremacy-style random circuit,
* every run stays within its memory budget and its fidelity lower bound.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import format_table, qubit_gain_from_ratio
from repro.applications import (
    grover_circuit,
    qaoa_maxcut_circuit,
    qft_benchmark_circuit,
    random_regular_graph,
    random_supremacy_circuit,
)
from repro.core import SimulatorConfig


def _workloads():
    graph = random_regular_graph(14, degree=4, seed=11)
    rng = np.random.default_rng(11)
    return [
        ("grover_16", grover_circuit(16, marked=12345, iterations=3), 16),
        ("grover_14", grover_circuit(14, marked=777, iterations=3), 14),
        ("rcs_4x3_d11", random_supremacy_circuit(4, 3, depth=11, seed=11), 12),
        ("qaoa_14_p2", qaoa_maxcut_circuit(
            graph,
            gammas=rng.uniform(0.1, 0.9, size=2),
            betas=rng.uniform(0.1, 0.9, size=2),
        ), 14),
        ("qft_12", qft_benchmark_circuit(12, seed=11), 12),
    ]


def _run(name: str, circuit, num_qubits: int, state_fraction: float) -> dict:
    """Run one workload with a memory budget targeting ``state_fraction`` of
    the dense state size for the compressed blocks (the Eq. 8 scratch space is
    granted on top, since it is a fixed cost of the method, not of the data).
    The paper's "Sys Mem / Req." column plays the same role."""

    dense_bytes = (1 << num_qubits) * 16
    num_ranks = 2
    block_amplitudes = (1 << num_qubits) // num_ranks // 8
    scratch_bytes = 2 * block_amplitudes * 16 * num_ranks
    budget = scratch_bytes + int(dense_bytes * state_fraction)
    config = SimulatorConfig(
        num_ranks=num_ranks,
        block_amplitudes=block_amplitudes,
        memory_budget_bytes=budget,
    )
    result = repro.run(circuit, backend="compressed", config=config)
    report = result.report
    return {
        "benchmark": name,
        "qubits": num_qubits,
        "mem_req_MiB": dense_bytes / 2**20,
        "state_budget_pct": 100 * state_fraction,
        "gates": report["gates_executed"],
        "total_s": report["total_seconds"],
        "cmp_pct": 100 * report["compression_fraction"],
        "dec_pct": 100 * report["decompression_fraction"],
        "comm_pct": 100 * report["communication_fraction"],
        "comp_pct": 100 * report["computation_fraction"],
        "ms_per_gate": 1e3 * report["seconds_per_gate"],
        "fidelity_bound": report["fidelity_lower_bound"],
        "final_bound": report["final_error_bound"],
        "min_ratio": report["min_compression_ratio"],
        "final_ratio": result.metadata["compression_ratio"],
        "qubit_gain": qubit_gain_from_ratio(max(report["min_compression_ratio"], 1.0)),
    }


#: Per-workload compressed-state budget as a fraction of the dense size,
#: mirroring the spirit of the paper's "Sys Mem / Req." row (Grover gets a
#: tiny fraction, the hard-to-compress workloads a moderate one).
STATE_FRACTIONS = {
    "grover_16": 1 / 8,
    "grover_14": 1 / 8,
    "rcs_4x3_d11": 1 / 2,
    "qaoa_14_p2": 1 / 2,
    "qft_12": 1 / 2,
}


def test_table2_main_results(benchmark, emit):
    workloads = _workloads()
    rows = [
        _run(name, circuit, n, STATE_FRACTIONS[name]) for name, circuit, n in workloads
    ]
    benchmark.pedantic(
        _run, args=("qft_12_timed", qft_benchmark_circuit(12, seed=11), 12, 0.5),
        rounds=1, iterations=1,
    )

    emit(
        "Table 2: main benchmark results (scaled-down; paper runs 36-61 qubits on Theta)",
        format_table(rows, floatfmt="{:.3g}")
        + "\n\npaper shape: Grover compresses by orders of magnitude more than"
        "\nthe other applications (7.4e4 at 61 qubits) and keeps fidelity ~1;"
        "\nQAOA/QFT reach ratios ~5-21; the random circuit compresses worst;"
        "\ncompression+decompression dominate the runtime for the non-Grover"
        "\napplications; the ratio maps to a 2-16 qubit gain in simulable size.",
    )

    by_name = {row["benchmark"]: row for row in rows}

    # Grover is by far the most compressible workload, despite being granted
    # an eight-times smaller budget than the others (paper: 7.4e4 vs 5-10).
    for grover in ("grover_16", "grover_14"):
        assert by_name[grover]["final_ratio"] > 2 * by_name["rcs_4x3_d11"]["final_ratio"]
        assert by_name[grover]["final_ratio"] > 10
    # Sanity of the fidelity accounting on every run.
    for row in rows:
        assert 0.0 < row["fidelity_bound"] <= 1.0
    # Grover keeps high fidelity even under its small budget because the
    # loosest bound it needs is small (paper: 0.996 at 61 qubits).
    assert by_name["grover_16"]["fidelity_bound"] > 0.5
    assert by_name["grover_14"]["fidelity_bound"] > 0.5
    # Compression + decompression dominate the runtime for the non-Grover
    # applications (paper: 55-95%).
    for name in ("rcs_4x3_d11", "qaoa_14_p2", "qft_12"):
        row = by_name[name]
        assert row["cmp_pct"] + row["dec_pct"] > 30.0
