"""Table 1 — supercomputer memory capacity vs maximum simulable qubits.

Paper values: Summit 2.8 PB / 47 qubits, Sierra 1.38 PB / 46, Sunway
TaihuLight 1.31 PB / 46, Theta 0.8 PB / 45.  The bench recomputes the table
from the ``2^{n+4}``-byte memory model and additionally shows how far each
cap moves at the compression ratios measured in Table 2.
"""

from __future__ import annotations

from repro.analysis import PAPER_SUPERCOMPUTERS, format_table, table1_rows


def test_table1_supercomputer_capacity(benchmark, emit):
    rows = benchmark(table1_rows)

    extended = []
    for machine, row in zip(PAPER_SUPERCOMPUTERS, rows):
        extended.append(
            {
                "system": row["system"],
                "memory_pb": row["memory_pb"],
                "max_qubits": row["max_qubits"],
                "max_qubits_at_ratio_16x": machine.max_qubits_with_ratio(16.0),
                "max_qubits_at_ratio_7e4x": machine.max_qubits_with_ratio(7.39e4),
            }
        )
    emit(
        "Table 1: memory capacity vs maximum full-state qubits",
        format_table(extended)
        + "\n\npaper: 47 / 46 / 46 / 45 qubits -- the model reproduces all four rows exactly.",
    )

    expected = {"Summit": 47, "Sierra": 46, "Sunway TaihuLight": 46, "Theta": 45}
    assert {r["system"]: r["max_qubits"] for r in rows} == expected
