"""Codec encode/decode throughput and the vectorised-decode speedup.

PR 2 rebuilt the codec layer so no per-symbol or per-bit Python loop runs on
block-sized data: the Huffman decoder is table-driven (window lookup + jump
composition + wavefront), the encoder packs code words straight into a
uint64 bitstream, SZ's escape-segment reconstruction is one cumulative sum,
and the ZFP-style coefficient fields go through the shared ``bitpack``
helpers.  This bench pins those wins to numbers:

* encode/decode MB/s per codec and block size (the paper's Figure 11
  quantities, on the spiky amplitude model of Figure 9),
* the table-driven Huffman decoder against a faithful copy of the seed's
  bit-by-bit decoder on a 2^20-symbol SZ-quantized stream (the acceptance
  floor is 5x),
* the engine matrix: the same decode paths once per registered kernel
  engine (``numpy`` and, where installed, the JIT-compiled ``numba``
  engine), with cross-engine bit-identity asserted in every mode and a
  >= 3x numba-over-numpy Huffman-decode floor enforced in full mode, and
* the ``TaskExecutor`` thread-scaling curve with the SZ codec on the hot
  path — NumPy kernels and zlib release the GIL, which is what
  ``num_workers`` > 1 feeds on.

Results land in ``benchmarks/results/BENCH_codec.json`` (machine-readable,
one file per run) next to the human-readable ``.txt`` blocks.  Decode
mismatches fail the run in every mode; timing floors are only enforced in
the full-size run (``REPRO_BENCH_QUICK=1`` is for CI smoke on noisy shared
runners).
"""

from __future__ import annotations

import json
import math
import os
import struct
import time
from collections import Counter
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.circuits import QuantumCircuit
from repro.compression import (
    ErrorBoundMode,
    SZCompressor,
    available_engines,
    get_compressor,
    huffman,
    quantization,
)
from repro.compression.huffman import HuffmanCodec
from repro.core import CompressedSimulator, SimulatorConfig, effective_cpu_count

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_codec.json"

BLOCK_SIZES = (1 << 14, 1 << 17) if QUICK else (1 << 14, 1 << 17, 1 << 20)
HUFFMAN_SYMBOLS = 1 << 16 if QUICK else 1 << 20
REPEATS = 2 if QUICK else 3
SPEEDUP_FLOOR = 5.0
#: Minimum numba-over-numpy Huffman decode speedup (full mode, numba hosts).
ENGINE_SPEEDUP_FLOOR = 3.0


def _merge_json(section: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    data["meta"] = {
        "quick": QUICK,
        "huffman_symbols": HUFFMAN_SYMBOLS,
        "block_sizes": list(BLOCK_SIZES),
        # Effective CPUs (affinity-aware), not raw os.cpu_count(): container
        # and cpuset runs must not overstate the available parallelism.
        "available_cpus": effective_cpu_count(),
    }
    JSON_PATH.write_text(json.dumps(data, indent=2))


def _spiky_amplitudes(rng: np.random.Generator, size: int) -> np.ndarray:
    """The paper's Figure 9 amplitude model: log-normal magnitudes, signs."""

    return np.exp(rng.normal(-9.0, 2.0, size=size)) * rng.choice([-1.0, 1.0], size)


def _sz_quantized_stream(size: int) -> np.ndarray:
    """Delta-coded quantization codes of a spiky stream (SZ's Huffman input)."""

    rng = np.random.default_rng(7)
    mags = np.exp(rng.normal(-9.0, 2.0, size=size))
    codes = quantization.quantize(
        np.log(mags), quantization.relative_to_log_absolute(1e-3)
    )
    return np.diff(codes, prepend=codes[:1]).astype(np.int64)


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def seed_huffman_decode(blob: bytes) -> np.ndarray:
    """Faithful copy of the seed's bit-by-bit Huffman decoder (commit
    fc291b9), kept here as the baseline the tentpole is measured against."""

    (count,) = struct.unpack_from("<Q", blob, 0)
    offset = 8
    (book_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    if count == 0:
        return np.zeros(0, dtype=np.int64)
    book_blob = blob[offset : offset + book_len]
    offset += book_len
    (num_entries,) = struct.unpack_from("<I", book_blob, 0)
    symbols = np.frombuffer(book_blob, dtype="<i8", count=num_entries, offset=4)
    lengths = np.frombuffer(
        book_blob, dtype="<u1", count=num_entries, offset=4 + 8 * num_entries
    )
    book = huffman._canonicalize(symbols.astype(np.int64), lengths.astype(np.uint8))

    (total_bits,) = struct.unpack_from("<Q", blob, offset)
    offset += 8
    packed = np.frombuffer(blob, dtype=np.uint8, offset=offset)
    bits = np.unpackbits(packed)[:total_bits]

    max_len = int(book.lengths.max())
    first_code: dict[int, int] = {}
    first_index: dict[int, int] = {}
    lengths_list = book.lengths.tolist()
    for i, length in enumerate(lengths_list):
        if length not in first_code:
            first_code[length] = int(book.codes[i])
            first_index[length] = i
    counts_per_len = Counter(lengths_list)

    out = np.empty(count, dtype=np.int64)
    book_symbols = book.symbols
    bit_list = bits.tolist()
    pos = 0
    n_bits = len(bit_list)
    for i in range(count):
        code = 0
        length = 0
        while True:
            if pos >= n_bits:
                raise RuntimeError("Huffman stream exhausted prematurely")
            code = (code << 1) | bit_list[pos]
            pos += 1
            length += 1
            if length > max_len:
                raise RuntimeError("invalid Huffman stream")
            if length in first_code:
                delta = code - first_code[length]
                if 0 <= delta < counts_per_len[length]:
                    out[i] = book_symbols[first_index[length] + delta]
                    break
    return out


def test_huffman_decode_speedup_vs_seed(emit):
    """Table-driven decode must beat the seed bit-walker >= 5x (full mode)."""

    symbols = _sz_quantized_stream(HUFFMAN_SYMBOLS)
    blob = huffman.encode(symbols)

    fast = huffman.decode(blob)
    slow = seed_huffman_decode(blob)
    # Bit-exactness against the seed decoder is the wire-format contract and
    # fails the bench in every mode.
    assert np.array_equal(fast, symbols)
    assert np.array_equal(slow, symbols)

    fast_s = _best_seconds(lambda: huffman.decode(blob), repeats=2 if QUICK else 5)
    slow_s = _best_seconds(lambda: seed_huffman_decode(blob), repeats=1 if QUICK else 2)
    speedup = slow_s / fast_s
    payload = {
        "symbols": int(symbols.size),
        "stream_bits": len(blob) * 8,
        "seed_seconds": slow_s,
        "vectorised_seconds": fast_s,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    _merge_json("huffman_speedup", payload)
    emit(
        f"Huffman decode: table-driven vs seed bit-walker ({symbols.size} symbols)",
        format_table(
            [
                {"decoder": "seed (bit-by-bit)", "seconds": f"{slow_s:.3f}"},
                {"decoder": "table-driven", "seconds": f"{fast_s:.3f}"},
            ]
        )
        + f"\nspeedup: {speedup:.1f}x (floor {SPEEDUP_FLOOR}x, enforced in full mode)",
    )
    if not QUICK:
        assert speedup >= SPEEDUP_FLOOR


def test_engine_matrix(emit):
    """The same hot decode paths, once per registered kernel engine.

    Every engine must decode the 2^20-symbol SZ-quantized Huffman stream and
    an SZ block bit-identically (asserted in every mode); on hosts where the
    numba engine runs natively its Huffman decode must beat the numpy engine
    by >= 3x in full mode.  Hosts without numba still record the numpy row,
    so the JSON's engine dimension exists in every environment.
    """

    symbols = _sz_quantized_stream(HUFFMAN_SYMBOLS)
    rng = np.random.default_rng(23)
    block = _spiky_amplitudes(rng, BLOCK_SIZES[-1])
    engines = available_engines()

    reference_blob = huffman.encode(symbols)
    reference_sz = SZCompressor(bound=1e-3).compress(block)

    rows = []
    results = {}
    for engine in sorted(engines):
        huff = HuffmanCodec(engine=engine)
        sz = SZCompressor(bound=1e-3, engine=engine)
        # Bit-identity across engines is the wire-format contract and fails
        # the bench in every mode.
        assert huff.encode(symbols) == reference_blob, engine
        assert sz.compress(block) == reference_sz, engine
        assert np.array_equal(huff.decode(reference_blob), symbols), engine

        huff.decode(reference_blob)  # warm-up (JIT compile on numba)
        sz.decompress(reference_sz)
        decode_s = _best_seconds(lambda: huff.decode(reference_blob))
        encode_s = _best_seconds(lambda: huff.encode(symbols))
        sz_decode_s = _best_seconds(lambda: sz.decompress(reference_sz))
        results[engine] = {
            "huffman_decode_seconds": decode_s,
            "huffman_encode_seconds": encode_s,
            "sz_decode_seconds": sz_decode_s,
            "huffman_decode_msym_s": symbols.size / decode_s / 1e6,
        }
        rows.append(
            {
                "engine": engine,
                "huffman_decode_s": f"{decode_s:.3f}",
                "huffman_encode_s": f"{encode_s:.3f}",
                "sz_decode_s": f"{sz_decode_s:.3f}",
            }
        )

    speedup = None
    if "numba" in results:
        speedup = (
            results["numpy"]["huffman_decode_seconds"]
            / results["numba"]["huffman_decode_seconds"]
        )
    _merge_json(
        "engines",
        {
            "available": list(engines),
            "symbols": int(symbols.size),
            "block": int(block.size),
            "results": results,
            "numba_decode_speedup": speedup,
            "floor": ENGINE_SPEEDUP_FLOOR,
        },
    )
    emit(
        f"Kernel engine matrix ({symbols.size} Huffman symbols, "
        f"{block.size}-amplitude SZ block)",
        format_table(rows)
        + (
            f"\nnumba decode speedup: {speedup:.1f}x "
            f"(floor {ENGINE_SPEEDUP_FLOOR}x, enforced in full mode)"
            if speedup is not None
            else "\nnumba not installed - numpy engine only"
        ),
    )
    if speedup is not None and not QUICK:
        assert speedup >= ENGINE_SPEEDUP_FLOOR


def test_codec_throughput_matrix(emit):
    """Encode/decode MB/s per codec and block size; mismatches always fail."""

    rng = np.random.default_rng(11)
    rows = []
    for size in BLOCK_SIZES:
        data = _spiky_amplitudes(rng, size)
        streams = {
            "huffman": _sz_quantized_stream(size),
            "sz-rel": data,
            "sz-abs": data,
            "zfp-abs": data,
            "xor-bitplane": data,
            "lossless": data,
        }
        codecs = {
            "huffman": (huffman.encode, huffman.decode),
            "sz-rel": SZCompressor(bound=1e-3),
            "sz-abs": SZCompressor(bound=1e-4, mode=ErrorBoundMode.ABSOLUTE),
            "zfp-abs": get_compressor("zfp", bound=1e-4),
            "xor-bitplane": get_compressor("xor-bitplane", bound=1e-3),
            "lossless": get_compressor("lossless"),
        }
        for name, codec in codecs.items():
            payload = streams[name]
            if name == "huffman":
                encode, decode = codec
            else:
                encode, decode = codec.compress, codec.decompress
            blob = encode(payload)
            recovered = decode(blob)
            if name in ("huffman", "lossless"):
                assert np.array_equal(recovered, payload), name
            else:
                assert recovered.shape == payload.shape, name
            encode_s = _best_seconds(lambda: encode(payload))
            decode_s = _best_seconds(lambda: decode(blob))
            mb = payload.nbytes / 1e6
            rows.append(
                {
                    "codec": name,
                    "block": size,
                    "ratio": f"{payload.nbytes / len(blob):.2f}",
                    "encode_mb_s": f"{mb / encode_s:.1f}",
                    "decode_mb_s": f"{mb / decode_s:.1f}",
                }
            )
    _merge_json(
        "throughput",
        [
            {
                "codec": r["codec"],
                "block": r["block"],
                "ratio": float(r["ratio"]),
                "encode_mb_s": float(r["encode_mb_s"]),
                "decode_mb_s": float(r["decode_mb_s"]),
            }
            for r in rows
        ],
    )
    emit("Codec throughput (MB/s of raw float64 per wall second)", format_table(rows))


def test_task_executor_thread_scaling(emit):
    """Thread-scaling curve of the codec path through ``TaskExecutor``.

    Two caveats the numbers must be read with, both recorded in the JSON:

    * the curve is bounded by the CPUs actually available — on a single-CPU
      runner it is flat by construction, and the test then only verifies
      that results stay bit-identical across worker counts;
    * of the codec stages, the zlib/lzma/bz2 backends release the GIL, but
      NumPy *fancy-indexing gathers* — the heart of the table-driven Huffman
      decoder — do not, so the SZ decode path stays mostly serial under
      threads however many cores exist.  (A process pool or a nogil build is
      the ROADMAP follow-up for that.)
    """

    num_qubits = 8 if QUICK else 12
    block_amplitudes = 32 if QUICK else 256
    circuit = QuantumCircuit(num_qubits, name="codec_scaling")
    for layer in range(2):
        for qubit in range(num_qubits):
            circuit.h(qubit)
            circuit.rz(0.3 * (qubit + 1 + layer), qubit)

    def run(workers: int) -> tuple[float, np.ndarray]:
        config = SimulatorConfig(
            num_ranks=2,
            block_amplitudes=block_amplitudes,
            lossy_compressor="sz",
            use_block_cache=False,
            num_workers=workers,
        )
        with CompressedSimulator(num_qubits, config) as simulator:
            start = time.perf_counter()
            simulator.apply_circuit(circuit)
            elapsed = time.perf_counter() - start
            state = simulator.statevector()
        return elapsed, state

    run(1)  # warm-up (allocator, scratch pools, zlib)
    results = {workers: run(workers) for workers in (1, 2, 4)}
    base_state = results[1][1]
    for workers, (_, state) in results.items():
        assert np.allclose(base_state, state, atol=1e-10), workers

    rows = [
        {
            "num_workers": workers,
            "seconds": f"{seconds:.3f}",
            "speedup": f"{results[1][0] / seconds:.2f}x",
        }
        for workers, (seconds, _) in results.items()
    ]
    available_cpus = effective_cpu_count()
    _merge_json(
        "thread_scaling",
        {
            "available_cpus": available_cpus,
            "curve": [
                {"num_workers": w, "seconds": s, "speedup": results[1][0] / s}
                for w, (s, _) in results.items()
            ],
        },
    )
    emit(
        f"TaskExecutor thread scaling, SZ codec path ({num_qubits} qubits, "
        f"{len(circuit)} gates, {available_cpus} CPU(s) available)",
        format_table(rows)
        + (
            "\nNOTE: single-CPU runner — the curve is flat by construction; "
            "this run only checks cross-worker determinism."
            if available_cpus == 1
            else ""
        ),
    )
