"""Ablation — adaptive lossless-first pipeline vs lossy-from-the-start.

Section 3.7's design starts every simulation with lossless compression and
only relaxes to lossy bounds when the memory budget forces it.  The ablation
compares that pipeline against starting lossy immediately (at the tightest
level) on a QFT workload: the adaptive variant should end with an equal or
better fidelity bound, because gates executed while the state was still
simple are charged no error at all.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.applications import qft_benchmark_circuit
from repro.core import CompressedSimulator, SimulatorConfig

NUM_QUBITS = 12


def _run(start_lossless: bool) -> dict:
    dense_bytes = (1 << NUM_QUBITS) * 16
    block_amplitudes = (1 << NUM_QUBITS) // 2 // 8
    scratch = 2 * block_amplitudes * 16 * 2
    config = SimulatorConfig(
        num_ranks=2,
        block_amplitudes=block_amplitudes,
        memory_budget_bytes=scratch + dense_bytes // 2,
        start_lossless=start_lossless,
    )
    simulator = CompressedSimulator(NUM_QUBITS, config)
    report = simulator.apply_circuit(qft_benchmark_circuit(NUM_QUBITS, seed=9))
    return {
        "pipeline": "lossless-first (paper)" if start_lossless else "lossy-from-start",
        "fidelity_bound": report.fidelity_lower_bound,
        "final_error_bound": report.final_error_bound,
        "escalations": report.escalations,
        "min_ratio": report.min_compression_ratio,
    }


def test_ablation_adaptive_pipeline(benchmark, emit):
    adaptive = _run(True)
    lossy_start = _run(False)
    benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)

    emit(
        "Ablation: lossless-first adaptive pipeline vs lossy-from-start (QFT-12)",
        format_table([adaptive, lossy_start])
        + "\n\nexpected: the adaptive pipeline charges no error while the state"
        "\nis still simple, so its fidelity lower bound is at least as good.",
    )

    assert adaptive["fidelity_bound"] >= lossy_start["fidelity_bound"] - 1e-12
    assert 0.0 < adaptive["fidelity_bound"] <= 1.0
