"""Figure 16 — strong scaling of the 51-qubit Hadamard workload with node count.

The paper reports speedups of 1.70x at 256 nodes and 2.84x at 512 nodes
relative to 128 nodes (ideal would be 2x and 4x).  This bench reproduces the
figure's story in two complementary modes:

* **Modelled** (the original mode): per-rank work (amplitudes per rank,
  hence decompress/compute/recompress volume) halves with every doubling of
  ranks while the communication volume per rank stays roughly constant, so
  the modelled critical-path time — measured single-rank per-block cost plus
  the :class:`~repro.distributed.SimulatedCommunicator` bandwidth model —
  shows sub-ideal speedup exactly as the paper observes.
* **Real exchange** (``comm="process"``, the ranked tier of
  :mod:`repro.distributed.ranked`): the same Hadamard workload runs with the
  state split over actual rank worker processes, and the JSON records the
  *measured* inter-rank traffic — bytes that crossed process boundaries
  through shared memory, pairwise exchange counts, and the per-rank
  communicator time buckets from ``SimulationReport.rank_comm``.  More rank
  bits ⇒ more rank-segment qubits ⇒ more real traffic, the mechanism behind
  the figure's communication floor.

Both modes run through the backend registry (``get_backend("compressed")``)
— the modelled mode injecting its custom bandwidth-modelled communicator via
the ``comm=`` session option, the real mode selecting the ranked tier via
``SimulatorConfig(comm="process")`` — so even this bench exercises the same
code path as every other ``repro.run()`` workload.

Results land in ``benchmarks/results/BENCH_fig16.json``.  Set
``REPRO_BENCH_QUICK=1`` for a CI-sized smoke run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis import format_table
from repro.applications import hadamard_scaling_circuit
from repro.backends import get_backend
from repro.core import SimulatorConfig, effective_cpu_count
from repro.distributed import SimulatedCommunicator

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
RESULTS_DIR = Path(__file__).parent / "results"
JSON_PATH = RESULTS_DIR / "BENCH_fig16.json"

#: 16 qubits in every mode: smaller registers make the modelled speedup
#: communication-dominated and the strong-scaling shape disappears.  Quick
#: mode trims the rank ladders instead.
NUM_QUBITS = 16
RANK_COUNTS = (4, 8, 16) if QUICK else (4, 8, 16, 32)
#: Rank counts for the real-exchange mode: every rank is a live worker
#: process, so the ladder stays within what a single node launches quickly.
REAL_RANK_COUNTS = (2, 4) if QUICK else (2, 4, 8)
#: Modelled interconnect: generous bandwidth so communication is a correction,
#: not the dominant term (as on Theta's Aries network).
BANDWIDTH = 2e9
LATENCY = 5e-6


def _merge_json(section: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    data["meta"] = {
        "quick": QUICK,
        "num_qubits": NUM_QUBITS,
        "available_cpus": effective_cpu_count(),
        "paper": "Figure 16: 51-qubit Hadamard, 128-4096 Theta nodes",
    }
    JSON_PATH.write_text(json.dumps(data, indent=2))


def _modelled_run(num_ranks: int) -> dict:
    comm = SimulatedCommunicator(num_ranks, bandwidth_bytes_per_s=BANDWIDTH, latency_s=LATENCY)
    config = SimulatorConfig(
        num_ranks=num_ranks,
        block_amplitudes=(1 << NUM_QUBITS) // num_ranks // 4,
        use_block_cache=False,
    )
    result = get_backend("compressed").run(
        hadamard_scaling_circuit(NUM_QUBITS), config=config, comm=comm
    )
    report = result.report
    # Critical path per rank: the measured sequential work divided across
    # ranks (perfectly parallel part) plus the modelled communication time.
    compute = (
        report["compression_seconds"]
        + report["decompression_seconds"]
        + report["computation_seconds"]
    ) / num_ranks
    return {
        "ranks": num_ranks,
        "sequential_seconds": result.metadata["wall_seconds"],
        "modelled_parallel_seconds": compute + comm.modelled_seconds,
        "communication_bytes": report["communication_bytes"],
    }


def _real_exchange_run(num_ranks: int) -> dict:
    """Run the workload on the ranked tier and record measured traffic."""

    config = SimulatorConfig(
        num_ranks=num_ranks,
        block_amplitudes=(1 << NUM_QUBITS) // num_ranks // 4,
        use_block_cache=False,
        comm="process",
    )
    result = get_backend("compressed").run(
        hadamard_scaling_circuit(NUM_QUBITS), config=config
    )
    report = result.report
    per_rank = report["rank_comm"]
    return {
        "ranks": num_ranks,
        "wall_seconds": result.metadata["wall_seconds"],
        "real_bytes": report["communication_bytes"],
        "block_exchanges": report["block_exchanges"],
        "communication_seconds": report["communication_seconds"],
        "max_rank_exchange_seconds": max(
            entry["exchange_seconds"] for entry in per_rank
        ),
        "bytes_per_rank": [entry["bytes_sent"] for entry in per_rank],
    }


def test_fig16_node_scaling(benchmark, emit):
    results = [_modelled_run(ranks) for ranks in RANK_COUNTS]
    benchmark.pedantic(_modelled_run, args=(RANK_COUNTS[0],), rounds=1, iterations=1)

    baseline = results[0]["modelled_parallel_seconds"]
    rows = []
    for result in results:
        speedup = baseline / result["modelled_parallel_seconds"]
        rows.append({**result, "speedup_vs_first": speedup,
                     "ideal_speedup": result["ranks"] / RANK_COUNTS[0]})
    emit(
        "Figure 16: strong scaling of the Hadamard workload "
        f"({NUM_QUBITS} qubits here; paper: 51 qubits on 128-512 Theta nodes)",
        format_table(rows)
        + "\n\npaper values: 1.70x at 2x nodes, 2.84x at 4x nodes (ideal 2x/4x)."
        "\nreproduced shape: monotone speedup that falls short of ideal because"
        "\ncommunication does not shrink with the per-rank state.",
    )
    _merge_json("modelled", rows)

    speedups = [row["speedup_vs_first"] for row in rows]
    ideals = [row["ideal_speedup"] for row in rows]
    # Speedup grows with the rank count (allow a little timing noise between
    # adjacent points) but stays clearly sub-ideal, as in the paper.
    assert all(speedups[i + 1] > speedups[i] * 0.9 for i in range(len(speedups) - 1))
    assert speedups[-1] > max(speedups[0], 1.5)
    assert speedups[-1] < ideals[-1]


def test_fig16_real_exchange(emit):
    """The ranked tier's measured data movement alongside the model."""

    rows = [_real_exchange_run(ranks) for ranks in REAL_RANK_COUNTS]
    emit(
        "Figure 16 (real-exchange mode): measured inter-rank traffic of the "
        f"Hadamard workload, ranked tier, {NUM_QUBITS} qubits",
        format_table(
            [
                {k: v for k, v in row.items() if k != "bytes_per_rank"}
                for row in rows
            ]
        )
        + "\n\nbytes are real: compressed blobs crossing process boundaries"
        "\nthrough shared memory, not modelled traffic.  log2(ranks) qubits"
        "\nfall in the rank segment, so total traffic grows with the rank"
        "\ncount while per-rank compute shrinks — the communication floor"
        "\nbehind the figure's sub-ideal speedup.",
    )
    _merge_json("real_exchange", rows)

    # Real bytes moved at every rank count, by every rank.
    assert all(row["real_bytes"] > 0 for row in rows)
    assert all(all(b > 0 for b in row["bytes_per_rank"]) for row in rows)
    assert all(row["communication_seconds"] > 0 for row in rows)
    # More rank bits => more rank-segment qubits => strictly more traffic.
    real_bytes = [row["real_bytes"] for row in rows]
    assert all(real_bytes[i + 1] > real_bytes[i] for i in range(len(real_bytes) - 1))
