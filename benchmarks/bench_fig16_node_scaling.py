"""Figure 16 — strong scaling of the 51-qubit Hadamard workload with node count.

The paper reports speedups of 1.70x at 256 nodes and 2.84x at 512 nodes
relative to 128 nodes (ideal would be 2x and 4x).  A single Python process
cannot show real parallel speedup, so the bench reproduces the *model* behind
the figure: per-rank work (amplitudes per rank, hence decompress/compute/
recompress volume) halves with every doubling of ranks, while the
communication volume per rank stays roughly constant — giving sub-ideal
speedup exactly as the paper observes.  The modelled critical-path time uses
the measured single-rank per-block cost plus the simulated communicator's
bandwidth model.

The engine is built through the backend registry — ``get_backend`` with the
session's ``comm=`` option carrying the custom bandwidth-modelled
communicator — so even the one bench with a hand-tuned interconnect runs the
same code path as every other ``repro.run()`` workload.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.applications import hadamard_scaling_circuit
from repro.backends import get_backend
from repro.core import SimulatorConfig
from repro.distributed import SimulatedCommunicator

NUM_QUBITS = 16
RANK_COUNTS = (4, 8, 16, 32)
#: Modelled interconnect: generous bandwidth so communication is a correction,
#: not the dominant term (as on Theta's Aries network).
BANDWIDTH = 2e9
LATENCY = 5e-6


def _modelled_run(num_ranks: int) -> dict:
    comm = SimulatedCommunicator(num_ranks, bandwidth_bytes_per_s=BANDWIDTH, latency_s=LATENCY)
    config = SimulatorConfig(
        num_ranks=num_ranks,
        block_amplitudes=(1 << NUM_QUBITS) // num_ranks // 4,
        use_block_cache=False,
    )
    result = get_backend("compressed").run(
        hadamard_scaling_circuit(NUM_QUBITS), config=config, comm=comm
    )
    report = result.report
    # Critical path per rank: the measured sequential work divided across
    # ranks (perfectly parallel part) plus the modelled communication time.
    compute = (
        report["compression_seconds"]
        + report["decompression_seconds"]
        + report["computation_seconds"]
    ) / num_ranks
    return {
        "ranks": num_ranks,
        "sequential_seconds": result.metadata["wall_seconds"],
        "modelled_parallel_seconds": compute + comm.modelled_seconds,
        "communication_bytes": report["communication_bytes"],
    }


def test_fig16_node_scaling(benchmark, emit):
    results = [_modelled_run(ranks) for ranks in RANK_COUNTS]
    benchmark.pedantic(_modelled_run, args=(RANK_COUNTS[0],), rounds=1, iterations=1)

    baseline = results[0]["modelled_parallel_seconds"]
    rows = []
    for result in results:
        speedup = baseline / result["modelled_parallel_seconds"]
        rows.append({**result, "speedup_vs_first": speedup,
                     "ideal_speedup": result["ranks"] / RANK_COUNTS[0]})
    emit(
        "Figure 16: strong scaling of the Hadamard workload "
        f"({NUM_QUBITS} qubits here; paper: 51 qubits on 128-512 Theta nodes)",
        format_table(rows)
        + "\n\npaper values: 1.70x at 2x nodes, 2.84x at 4x nodes (ideal 2x/4x)."
        "\nreproduced shape: monotone speedup that falls short of ideal because"
        "\ncommunication does not shrink with the per-rank state.",
    )

    speedups = [row["speedup_vs_first"] for row in rows]
    ideals = [row["ideal_speedup"] for row in rows]
    # Speedup grows with the rank count (allow a little timing noise between
    # adjacent points) but stays clearly sub-ideal, as in the paper.
    assert all(speedups[i + 1] > speedups[i] * 0.9 for i in range(len(speedups) - 1))
    assert speedups[-1] > max(speedups[0], 1.5)
    assert speedups[-1] < ideals[-1]
