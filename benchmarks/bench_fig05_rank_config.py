"""Figure 5 — normalized execution time vs MPI rank configuration.

The paper runs a 35-qubit random circuit with 8x32, 16x16, ..., 256x1
(ranks x threads) per node and finds that over- and under-decomposition both
hurt, with 128 ranks/node the sweet spot.  Threads do not exist in this
single-process reproduction, so the bench sweeps the rank count of the
simulated communicator for a fixed (scaled-down) random circuit and reports
execution time normalized to the slowest configuration — the same shape:
a handful of ranks beats both extremes once block-exchange overhead and
per-block bookkeeping are both in play.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.applications import random_supremacy_circuit
from repro.core import CompressedSimulator, SimulatorConfig

NUM_QUBITS = 12
RANK_COUNTS = (1, 2, 4, 8, 16, 32)


def _run(num_ranks: int) -> float:
    circuit = random_supremacy_circuit(3, 4, depth=8, seed=5)
    config = SimulatorConfig(
        num_ranks=num_ranks,
        block_amplitudes=min(256, (1 << NUM_QUBITS) // num_ranks // 2),
        use_block_cache=False,
    )
    simulator = CompressedSimulator(NUM_QUBITS, config)
    start = time.perf_counter()
    simulator.apply_circuit(circuit)
    return time.perf_counter() - start


def test_fig05_rank_configuration(benchmark, emit):
    timings = {ranks: _run(ranks) for ranks in RANK_COUNTS}
    benchmark.pedantic(_run, args=(8,), rounds=1, iterations=1)

    slowest = max(timings.values())
    rows = [
        {
            "ranks": ranks,
            "seconds": seconds,
            "normalized_time_pct": 100.0 * seconds / slowest,
        }
        for ranks, seconds in timings.items()
    ]
    best = min(timings, key=timings.get)
    emit(
        "Figure 5: normalized execution time vs rank configuration "
        f"({NUM_QUBITS}-qubit random circuit; paper: 35 qubits, 8x32..256x1 ranks x threads)",
        format_table(rows)
        + f"\n\nbest configuration: {best} ranks"
        + "\npaper shape: intermediate rank counts win (128 ranks/node); the"
        "\nextremes pay either lost parallel slots or exchange overhead.",
    )

    # Qualitative check: the most extreme decomposition must not be the best.
    assert best != RANK_COUNTS[-1]
