"""Figure 10 — compression ratio of Solutions A-D under relative error bounds.

Paper findings on qaoa_36 / sup_36: the SZ variants (A, B) trail the new
bit-plane pipelines (C, D) by roughly 30-50%, and C and D are comparable to
each other.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.compression import get_compressor, roundtrip

LEVELS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)
SOLUTIONS = ("A", "B", "C", "D")


def _ratios(data: np.ndarray) -> list[dict]:
    rows = []
    for level in LEVELS:
        row: dict = {"rel_error_bound": f"{level:g}"}
        for solution in SOLUTIONS:
            _, record = roundtrip(get_compressor(solution, bound=level), data)
            row[f"Sol.{solution}"] = record.ratio
        rows.append(row)
    return rows


def test_fig10_solution_compression_ratio(benchmark, emit, qaoa_snapshot, sup_snapshot):
    qaoa_rows = _ratios(qaoa_snapshot)
    sup_rows = _ratios(sup_snapshot)
    benchmark.pedantic(
        lambda: roundtrip(get_compressor("C", bound=1e-3), sup_snapshot),
        rounds=1,
        iterations=1,
    )

    emit(
        "Figure 10: compression ratio of Solutions A-D (pointwise relative error)",
        "qaoa snapshot\n"
        + format_table(qaoa_rows)
        + "\n\nsup snapshot\n"
        + format_table(sup_rows)
        + "\n\npaper shape: C and D lead A and B by ~30-50% and are comparable"
        "\nto each other; looser bounds always compress better.  On the scaled-"
        "\ndown snapshots the C/D-vs-A/B lead is reproduced on the entangled"
        "\n(sup) data and at the tight bounds of the qaoa data; at loose bounds"
        "\non qaoa the SZ variants pull ahead (the 2^14 state has less byte-"
        "\nlevel redundancy than 2^36 -- recorded in EXPERIMENTS.md).",
    )

    for rows in (qaoa_rows, sup_rows):
        for row in rows:
            # C and D are comparable (within 20% of each other), as in Fig 10.
            assert abs(row["Sol.C"] - row["Sol.D"]) / max(row["Sol.C"], row["Sol.D"]) < 0.2
        # Where SZ's prediction pipeline collapses (tightest bound), the
        # bit-plane pipeline keeps working — the core of the paper's argument.
        tightest = rows[-1]
        assert max(tightest["Sol.C"], tightest["Sol.D"]) > max(
            tightest["Sol.A"], tightest["Sol.B"]
        )
    # On the entangled snapshot C/D are at least competitive at every bound.
    for row in sup_rows:
        assert max(row["Sol.C"], row["Sol.D"]) > 0.9 * max(row["Sol.A"], row["Sol.B"])
