"""Figure 7 — compression ratio of SZ vs ZFP under absolute error bounds.

The paper compresses the qaoa_36 and sup_36 snapshots with absolute error
bounds set to 1e-1..1e-5 of the value range and finds SZ one to two orders of
magnitude ahead of ZFP (e.g. ~100:1 vs <10:1 on qaoa_36).  The bench repeats
the experiment on the scaled-down snapshots; the ordering (SZ > ZFP at every
bound) is the claim being reproduced, the absolute ratios shrink with the
dataset size.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.compression import ErrorBoundMode, SZCompressor, ZFPLikeCompressor, roundtrip

LEVELS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


def _ratios(data: np.ndarray) -> list[dict]:
    value_range = float(data.max() - data.min())
    rows = []
    for level in LEVELS:
        bound = level * value_range
        _, sz = roundtrip(SZCompressor(bound=bound, mode=ErrorBoundMode.ABSOLUTE), data)
        _, zfp = roundtrip(
            ZFPLikeCompressor(bound=bound, mode=ErrorBoundMode.ABSOLUTE), data
        )
        rows.append(
            {
                "abs_error_bound": f"{level:g} x range",
                "SZ_ratio": sz.ratio,
                "ZFP_ratio": zfp.ratio,
                "SZ_over_ZFP": sz.ratio / zfp.ratio,
            }
        )
    return rows


def test_fig07_absolute_error_compression_ratio(benchmark, emit, qaoa_snapshot, sup_snapshot):
    qaoa_rows = _ratios(qaoa_snapshot)
    sup_rows = _ratios(sup_snapshot)
    benchmark.pedantic(
        lambda: roundtrip(
            SZCompressor(
                bound=1e-3 * float(qaoa_snapshot.max() - qaoa_snapshot.min()),
                mode=ErrorBoundMode.ABSOLUTE,
            ),
            qaoa_snapshot,
        ),
        rounds=1,
        iterations=1,
    )

    emit(
        "Figure 7: SZ vs ZFP compression ratio (absolute error bounds)",
        "qaoa snapshot\n"
        + format_table(qaoa_rows)
        + "\n\nsup snapshot\n"
        + format_table(sup_rows)
        + "\n\npaper shape: SZ beats ZFP at every bound (qaoa_36: ~100:1 vs <10:1;"
        "\nsup_36: 28-126 vs 4.25-12.6).  On the scaled-down snapshots the"
        "\nordering holds at all but the very tightest bound of the qaoa set.",
    )

    for rows in (qaoa_rows, sup_rows):
        wins = sum(row["SZ_ratio"] > row["ZFP_ratio"] for row in rows)
        assert wins >= len(rows) - 1
        # On average SZ is clearly ahead, as in the paper.
        mean_advantage = sum(row["SZ_over_ZFP"] for row in rows) / len(rows)
        assert mean_advantage > 1.2
