"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures.  The
``emit`` fixture routes the reproduced rows/series both to the terminal
(bypassing pytest's capture, so they land in ``bench_output.txt``) and to a
text file under ``benchmarks/results/`` for later inspection; the standard
``benchmark`` fixture from pytest-benchmark times the kernel each experiment
is built around.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.datasets import qaoa_state, supremacy_state

RESULTS_DIR = Path(__file__).parent / "results"

#: Qubit count of the compression-study snapshots (the paper uses 36; this
#: laptop-scale reproduction uses 14, see DESIGN.md).
SNAPSHOT_QUBITS = 14

#: The paper's five pointwise relative error levels, loosest first as plotted.
ERROR_LEVELS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


@pytest.fixture(scope="session")
def qaoa_snapshot() -> np.ndarray:
    """Float64 stream of the QAOA state snapshot (paper: qaoa_36)."""

    return qaoa_state(num_qubits=SNAPSHOT_QUBITS, seed=7).view(np.float64)


@pytest.fixture(scope="session")
def sup_snapshot() -> np.ndarray:
    """Float64 stream of the supremacy-circuit snapshot (paper: sup_36)."""

    return supremacy_state(num_qubits=SNAPSHOT_QUBITS, depth=11, seed=7).view(np.float64)


@pytest.fixture
def emit(capsys, request):
    """Print an experiment block to the real terminal and save it to a file."""

    def _emit(title: str, body: str) -> None:
        banner = "=" * max(len(title), 20)
        text = f"\n{banner}\n{title}\n{banner}\n{body}\n"
        with capsys.disabled():
            print(text, flush=True)
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", request.node.name.strip("_"))
        (RESULTS_DIR / f"{slug}.txt").write_text(text)

    return _emit
