"""Figure 13 — why Solutions C/D over-preserve: discrete truncation errors.

Figure 13(b) walks the example value 3.9921875 through successively coarser
bit-plane truncations and lists the resulting values and relative errors
(3.984375 / 0.001957, 3.96875 / 0.005871, ...).  The bench regenerates the
same table and checks the paper's point: with a relative bound of 0.01 the
truncation picks the 15-leading-bit row whose actual error (0.005871) is well
below the bound.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.compression import bitplane

EXAMPLE_VALUE = 3.9921875

#: (value, relative error) rows printed in Figure 13(b).
PAPER_ROWS = [
    (3.984375, 0.001957),
    (3.96875, 0.005871),
    (3.9375, 0.013699),
    (3.875, 0.029354),
    (3.75, 0.060666),
    (3.5, 0.123288),
]


def test_fig13_discrete_truncation_errors(benchmark, emit):
    rows = benchmark(lambda: bitplane.truncation_table(EXAMPLE_VALUE, max_mantissa_bits=9))

    emit(
        "Figure 13: discrete relative errors when truncating bit planes of 3.9921875",
        format_table(rows, floatfmt="{:.6g}")
        + "\n\npaper rows: "
        + ", ".join(f"{v} ({e})" for v, e in PAPER_ROWS)
        + "\nwith bound 0.01 the pipeline keeps 6 mantissa bits -> value 3.96875,"
        "\nactual error 0.005871 < 0.01 (over-preservation).  (The paper's"
        "\nillustration counts 15 leading bits because it draws a single-precision"
        "\nlayout; for the double-precision pipeline the same row is 12+6 bits.)",
    )

    produced = {round(row["value"], 7): row["relative_error"] for row in rows}
    for value, error in PAPER_ROWS:
        assert round(value, 7) in produced
        assert produced[round(value, 7)] == pytest.approx(error, abs=1e-5)

    # The Eq. 12 machinery picks 19 significant bits for bound 1e-2 (byte
    # alignment keeps even more), and keeping 6 mantissa bits reproduces the
    # figure's 3.96875 / 0.005871 row.
    assert bitplane.significant_bit_count(1e-2) == 19
    six_mantissa_bits = bitplane.truncate_bitplanes(
        __import__("numpy").array([EXAMPLE_VALUE]), bitplane.DOUBLE_SIGN_EXP_BITS + 6
    )[0]
    assert six_mantissa_bits == pytest.approx(3.96875)
