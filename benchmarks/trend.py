"""Per-commit codec benchmark trend tracking (asv-style, dependency-free).

``bench_codec_throughput.py`` writes one ``BENCH_codec.json`` per run; this
script distills each run into a one-line summary record, appends it to
``benchmarks/results/TREND.jsonl`` and compares the fresh run against the
most recent *environment-matched* baseline already in the file.  A decode
throughput drop of more than ``--threshold`` (default 30%) on any tracked
series fails the run with exit code 1, so the CI codec-bench job turns a
silent performance regression into a red build while still recording the
data point for later inspection.

Environment matching is deliberately strict: a baseline only counts when it
ran in the same mode (quick vs full), on the same stream sizes and with the
same engine set — comparing a laptop full run against a throttled CI quick
run would only produce noise.  When no matched baseline exists the run is
recorded and passes.

The same file also carries per-commit *lint* records: ``--lint PATH``
distills a ``repro.tools.lint --json`` report into a one-line record
(``"kind": "lint"`` — per-rule diagnostic counts, suppression count, files
checked) and appends it.  Lint records are history only: the CI lint step
itself is the pass/fail gate, and codec baseline matching skips them.

Likewise ``--serve PATH`` ingests the summary JSON written by
``tests/run_serve_soak.py`` into a ``"kind": "serve"`` record (job count,
fairness/starvation verdicts, recoveries, cache hit rate, soak duration).
The soak script's exit code is the gate; the trend record is the history.

Usage::

    python benchmarks/trend.py                  # append + check
    python benchmarks/trend.py --check-only     # compare without appending
    python benchmarks/trend.py --threshold 0.5  # looser gate
    python benchmarks/trend.py --lint lint-report.json  # record lint counts
    python benchmarks/trend.py --serve serve-soak.json  # record soak summary
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from datetime import datetime, timezone
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
DEFAULT_RESULTS = RESULTS_DIR / "BENCH_codec.json"
DEFAULT_TREND = RESULTS_DIR / "TREND.jsonl"
DEFAULT_THRESHOLD = 0.30

#: Keys that must agree between two records for a comparison to make sense.
ENVIRONMENT_KEYS = ("quick", "huffman_symbols", "block_sizes", "engines_available")


def current_commit() -> str:
    """Short hash of the checked-out commit (``"unknown"`` outside git)."""

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def summarise(bench: dict, commit: str, timestamp: str) -> dict:
    """One flat trend record from a ``BENCH_codec.json`` payload.

    ``decode_mb_s`` carries one series per (codec, block) cell of the
    throughput matrix; ``huffman_decode_msym_s`` one series per engine.
    Sections absent from a partial bench run are simply absent here too.
    """

    meta = bench.get("meta", {})
    record = {
        "schema": 1,
        "kind": "codec",
        "commit": commit,
        "timestamp": timestamp,
        "quick": bool(meta.get("quick", False)),
        "huffman_symbols": meta.get("huffman_symbols"),
        "block_sizes": meta.get("block_sizes"),
        "available_cpus": meta.get("available_cpus"),
        "engines_available": None,
        "decode_mb_s": {},
        "huffman_decode_msym_s": {},
    }
    for row in bench.get("throughput", []):
        record["decode_mb_s"][f"{row['codec']}@{row['block']}"] = row["decode_mb_s"]
    if "huffman_speedup" in bench:
        section = bench["huffman_speedup"]
        record["huffman_decode_msym_s"]["numpy"] = (
            section["symbols"] / section["vectorised_seconds"] / 1e6
        )
    if "engines" in bench:
        section = bench["engines"]
        record["engines_available"] = sorted(section["available"])
        for engine, metrics in section["results"].items():
            record["huffman_decode_msym_s"][engine] = metrics[
                "huffman_decode_msym_s"
            ]
    return record


def lint_record(report: dict, commit: str, timestamp: str) -> dict:
    """One flat trend record from a ``repro.tools.lint --json`` report.

    Tracks the shape of the lint surface over time — how many diagnostics
    each rule would raise without suppressions, how many sanctioned
    suppressions the tree carries, and how many files the walk covered.
    """

    per_rule = {rule: 0 for rule in report.get("rules_active", [])}
    for diagnostic in report.get("diagnostics", []):
        per_rule[diagnostic["rule"]] = per_rule.get(diagnostic["rule"], 0) + 1
    return {
        "schema": 1,
        "kind": "lint",
        "commit": commit,
        "timestamp": timestamp,
        "files_checked": report.get("files_checked", 0),
        "diagnostics": len(report.get("diagnostics", [])),
        "suppressed": len(report.get("suppressed", [])),
        "per_rule": per_rule,
    }


def serve_record(summary: dict, commit: str, timestamp: str) -> dict:
    """One flat trend record from a ``tests/run_serve_soak.py`` summary.

    Tracks the service soak over time — how many jobs ran, whether the
    fairness and bit-identity contracts held, how many injected worker
    kills were recovered and how warm the result cache ran.  The soak
    script's own exit code is the pass/fail gate; this is the history.
    """

    cache = summary.get("cache") or {}
    hits = cache.get("hits", 0)
    lookups = hits + cache.get("misses", 0)
    return {
        "schema": 1,
        "kind": "serve",
        "commit": commit,
        "timestamp": timestamp,
        "jobs": summary.get("jobs", 0),
        "tenants": summary.get("tenants"),
        "fairness_ok": bool(summary.get("fairness_ok", False)),
        "starvation_ok": bool(summary.get("starvation_ok", False)),
        "recoveries": summary.get("recoveries", 0),
        "bit_identity_checked": summary.get("bit_identity_checked", 0),
        "bit_identity_mismatches": summary.get("bit_identity_mismatches", 0),
        "cache_hit_rate": (hits / lookups) if lookups else None,
        "duration_seconds": summary.get("duration_seconds"),
    }


def environment_matches(current: dict, candidate: dict) -> bool:
    """Whether *candidate* ran under comparable conditions to *current*.

    Only codec records qualify as codec baselines; lint records (and any
    future kinds) share TREND.jsonl but never match.
    """

    if candidate.get("kind", "codec") != "codec":
        return False
    return all(current.get(key) == candidate.get(key) for key in ENVIRONMENT_KEYS)


def find_baseline(entries: list[dict], current: dict) -> dict | None:
    """The most recent environment-matched record, if any."""

    for candidate in reversed(entries):
        if environment_matches(current, candidate):
            return candidate
    return None


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Regression messages for every tracked series that dropped too far.

    A series regresses when its current throughput falls below
    ``baseline * (1 - threshold)``.  Series present in only one record are
    ignored (new codecs appear, old ones retire — neither is a regression).
    """

    regressions = []
    for family in ("decode_mb_s", "huffman_decode_msym_s"):
        base_series = baseline.get(family, {})
        for key, value in current.get(family, {}).items():
            base = base_series.get(key)
            if base is None or base <= 0:
                continue
            if value < base * (1.0 - threshold):
                drop = 100.0 * (1.0 - value / base)
                regressions.append(
                    f"{family}[{key}]: {value:.2f} vs baseline {base:.2f} "
                    f"from {baseline.get('commit', '?')} (-{drop:.0f}%, "
                    f"gate {100 * threshold:.0f}%)"
                )
    return regressions


def load_trend(path: Path) -> list[dict]:
    """All records in a TREND.jsonl file, oldest first (missing file: [])."""

    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def append_record(path: Path, record: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--results", type=Path, default=DEFAULT_RESULTS)
    parser.add_argument("--trend", type=Path, default=DEFAULT_TREND)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="compare against the baseline without appending a record",
    )
    parser.add_argument(
        "--lint",
        type=Path,
        default=None,
        metavar="REPORT",
        help="append a lint record distilled from a repro.tools.lint --json "
        "report instead of processing benchmark results",
    )
    parser.add_argument(
        "--serve",
        type=Path,
        default=None,
        metavar="SUMMARY",
        help="append a serve-soak record distilled from a "
        "tests/run_serve_soak.py summary JSON instead of processing "
        "benchmark results",
    )
    args = parser.parse_args(argv)

    if args.serve is not None:
        # Recorder, not a gate: the soak script fails the build on any
        # broken contract; this writes the data point into the history.
        if not args.serve.exists():
            print(f"trend: no serve-soak summary at {args.serve}; run "
                  "python tests/run_serve_soak.py first", file=sys.stderr)
            return 2
        record = serve_record(
            json.loads(args.serve.read_text()),
            commit=current_commit(),
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
        if not args.check_only:
            append_record(args.trend, record)
        rate = record["cache_hit_rate"]
        print(
            f"trend: serve soak @ {record['commit']}: {record['jobs']} jobs, "
            f"fairness={'ok' if record['fairness_ok'] else 'BROKEN'}, "
            f"{record['recoveries']} recovery(ies), "
            f"cache hit rate {'n/a' if rate is None else f'{rate:.0%}'}"
        )
        return 0

    if args.lint is not None:
        # Recorder, not a gate: the CI lint step fails the build on
        # diagnostics; this just writes the data point into the history.
        if not args.lint.exists():
            print(f"trend: no lint report at {args.lint}; run "
                  "python -m repro.tools.lint --json first", file=sys.stderr)
            return 2
        record = lint_record(
            json.loads(args.lint.read_text()),
            commit=current_commit(),
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        )
        if not args.check_only:
            append_record(args.trend, record)
        print(
            f"trend: lint @ {record['commit']}: {record['diagnostics']} "
            f"diagnostic(s), {record['suppressed']} suppressed, "
            f"{record['files_checked']} file(s)"
        )
        return 0

    if not args.results.exists():
        print(f"trend: no benchmark results at {args.results}; run "
              "bench_codec_throughput.py first", file=sys.stderr)
        return 2
    bench = json.loads(args.results.read_text())
    record = summarise(
        bench,
        commit=current_commit(),
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
    )

    entries = load_trend(args.trend)
    baseline = find_baseline(entries, record)
    if not args.check_only:
        # Record the data point even when it regresses: the trend file is the
        # history, the exit code is the gate.
        append_record(args.trend, record)

    if baseline is None:
        print(
            f"trend: recorded {record['commit']} "
            f"({len(record['decode_mb_s'])} throughput series); "
            "no environment-matched baseline yet"
        )
        return 0

    regressions = compare(record, baseline, args.threshold)
    if regressions:
        print(f"trend: decode throughput regressed vs {baseline['commit']}:")
        for message in regressions:
            print(f"  {message}")
        return 1
    print(
        f"trend: {record['commit']} within {100 * args.threshold:.0f}% of "
        f"baseline {baseline['commit']} on all "
        f"{len(record['decode_mb_s']) + len(record['huffman_decode_msym_s'])} series"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
