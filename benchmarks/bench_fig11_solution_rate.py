"""Figure 11 — compression and decompression rate (MB/s) of Solutions A-D.

Paper findings: Solutions C and D are several times faster than the SZ-based
A and B in both directions (they drop the prediction, quantization and
Huffman stages), B is faster than A, and C is slightly faster than D (no
reshuffle step).  Absolute MB/s are not comparable (C + Zstd on KNL vs Python
+ zlib), the ordering is the reproduced result.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.compression import get_compressor, roundtrip

LEVELS = (1e-1, 1e-3, 1e-5)
SOLUTIONS = ("A", "B", "C", "D")


def _rates(data: np.ndarray) -> list[dict]:
    rows = []
    for level in LEVELS:
        row: dict = {"rel_error_bound": f"{level:g}"}
        for solution in SOLUTIONS:
            _, record = roundtrip(get_compressor(solution, bound=level), data)
            row[f"{solution}_cmp_MBps"] = record.compress_mb_per_s
            row[f"{solution}_dec_MBps"] = record.decompress_mb_per_s
        rows.append(row)
    return rows


def test_fig11_solution_throughput(benchmark, emit, qaoa_snapshot, sup_snapshot):
    qaoa_rows = _rates(qaoa_snapshot)
    sup_rows = _rates(sup_snapshot)
    benchmark.pedantic(
        lambda: roundtrip(get_compressor("C", bound=1e-3), qaoa_snapshot),
        rounds=3,
        iterations=1,
    )

    emit(
        "Figure 11: compression / decompression rates of Solutions A-D (MB/s)",
        "qaoa snapshot\n"
        + format_table(qaoa_rows)
        + "\n\nsup snapshot\n"
        + format_table(sup_rows)
        + "\n\npaper shape: C and D are far faster than A and B in both"
        "\ndirections; C edges out D (no reshuffle step).",
    )

    for rows in (qaoa_rows, sup_rows):
        # Decompression: C/D beat A/B at every bound by a wide margin.
        for row in rows:
            slow_sz_dec = max(row["A_dec_MBps"], row["B_dec_MBps"])
            fast_new_dec = min(row["C_dec_MBps"], row["D_dec_MBps"])
            assert fast_new_dec > 2 * slow_sz_dec
        # Compression: C/D are faster on average across the bound ladder
        # (at individual loose bounds SZ can be competitive because most of
        # its input quantizes to a single symbol).
        mean_sz = np.mean([[row["A_cmp_MBps"], row["B_cmp_MBps"]] for row in rows])
        mean_new = np.mean([[row["C_cmp_MBps"], row["D_cmp_MBps"]] for row in rows])
        assert mean_new > mean_sz
