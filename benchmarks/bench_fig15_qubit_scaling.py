"""Figure 15 — normalized execution time vs number of qubits on a single node.

The paper runs the Hadamard-per-qubit workload at 34-40 qubits on one KNL
node and reports execution time growing to 169% of the 34-qubit baseline at
40 qubits.  The bench sweeps a scaled-down qubit range with the same
workload; the reproduced shape is monotone growth, super-linear in the qubit
count because both the number of blocks per gate and the number of gates grow.
"""

from __future__ import annotations

import repro
from repro.analysis import format_table
from repro.applications import hadamard_scaling_circuit
from repro.core import SimulatorConfig

QUBIT_RANGE = (12, 13, 14, 15, 16)


def _run(num_qubits: int) -> float:
    config = SimulatorConfig(num_ranks=1, block_amplitudes=1024, use_block_cache=False)
    result = repro.run(
        hadamard_scaling_circuit(num_qubits), backend="compressed", config=config
    )
    # The report's bucketed total covers gate execution only — simulator
    # construction and result packaging stay out of the scaling curve, as
    # in the pre-unified-API version of this bench.
    return result.report["total_seconds"]


def test_fig15_single_node_qubit_scaling(benchmark, emit):
    timings = {n: _run(n) for n in QUBIT_RANGE}
    benchmark.pedantic(_run, args=(QUBIT_RANGE[0],), rounds=1, iterations=1)

    baseline = timings[QUBIT_RANGE[0]]
    rows = [
        {
            "qubits": n,
            "seconds": seconds,
            "normalized_time_pct": 100.0 * seconds / baseline,
        }
        for n, seconds in timings.items()
    ]
    emit(
        "Figure 15: normalized execution time vs number of qubits (single node)",
        format_table(rows)
        + "\n\npaper values (34->40 qubits): 100%, 104%, 110%, 117%, 126%, 142%, 169%"
        "\nreproduced shape: monotone, accelerating growth with qubit count.",
    )

    values = [timings[n] for n in QUBIT_RANGE]
    assert values[-1] > values[0]
    # Growth from first to last is substantial (well beyond timing noise).
    assert values[-1] / values[0] > 2.0
