"""Figure 8 — compression ratio of SZ vs FPZIP vs ZFP under pointwise
relative error bounds.

The paper maps the relative levels 1e-1..1e-5 to FPZIP precisions 16/18/22/
24/28, compresses ZFP via the log-domain transform, and finds SZ clearly
ahead of both baselines at every level.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.compression import (
    ErrorBoundMode,
    FPZIPLikeCompressor,
    SZCompressor,
    ZFPLikeCompressor,
    roundtrip,
)

LEVELS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


def _ratios(data: np.ndarray) -> list[dict]:
    rows = []
    for level in LEVELS:
        _, sz = roundtrip(SZCompressor(bound=level), data)
        _, fpzip = roundtrip(FPZIPLikeCompressor.from_relative_bound(level), data)
        _, zfp = roundtrip(
            ZFPLikeCompressor(bound=level, mode=ErrorBoundMode.RELATIVE), data
        )
        rows.append(
            {
                "rel_error_bound": f"{level:g}",
                "SZ_ratio": sz.ratio,
                "FPZIP_ratio": fpzip.ratio,
                "ZFP_ratio": zfp.ratio,
            }
        )
    return rows


def test_fig08_relative_error_compression_ratio(benchmark, emit, qaoa_snapshot, sup_snapshot):
    qaoa_rows = _ratios(qaoa_snapshot)
    sup_rows = _ratios(sup_snapshot)
    benchmark.pedantic(
        lambda: roundtrip(SZCompressor(bound=1e-3), sup_snapshot), rounds=1, iterations=1
    )

    emit(
        "Figure 8: SZ vs FPZIP vs ZFP compression ratio (pointwise relative error bounds)",
        "qaoa snapshot\n"
        + format_table(qaoa_rows)
        + "\n\nsup snapshot\n"
        + format_table(sup_rows)
        + "\n\npaper shape: SZ leads both baselines at every level; ZFP trails"
        "\nbecause the log-transformed amplitudes are still spiky.  On the"
        "\nscaled-down snapshots SZ > ZFP holds at every level; SZ > FPZIP"
        "\nholds at the loose bounds but not the tightest ones (the 2^14-"
        "\namplitude states carry too little value redundancy for SZ's"
        "\nquantization+Huffman stage to pay off -- recorded in EXPERIMENTS.md).",
    )

    for rows in (qaoa_rows, sup_rows):
        # The SZ-vs-ZFP ordering (the headline of Figure 8) holds at all but
        # possibly the tightest bound of the scaled-down qaoa snapshot.
        wins_over_zfp = sum(row["SZ_ratio"] > row["ZFP_ratio"] for row in rows)
        assert wins_over_zfp >= len(rows) - 1
    # SZ vs FPZIP: reproduced at the loose bounds on the scaled-down data.
    assert qaoa_rows[0]["SZ_ratio"] > qaoa_rows[0]["FPZIP_ratio"]
    assert sup_rows[0]["SZ_ratio"] > sup_rows[0]["FPZIP_ratio"] * 0.95
