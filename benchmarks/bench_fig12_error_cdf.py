"""Figure 12 — distribution of the maximum pointwise relative error per data
block for Solutions A-D.

The paper splits one rank's data into blocks, compresses each block at every
error level, and plots the CDF of the per-block maximum relative error.  Its
observations: (1) every solution respects the bound, (2) C and D overlap
exactly, and (3) C/D errors sit well below the bound (over-preservation)
while A/B errors approach it.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.compression import get_compressor, metrics, roundtrip

LEVELS = (1e-1, 1e-3, 1e-5)
SOLUTIONS = ("A", "B", "C", "D")
BLOCK = 2048


def _per_block_stats(data: np.ndarray, level: float) -> list[dict]:
    rows = []
    for solution in SOLUTIONS:
        compressor = get_compressor(solution, bound=level)
        recovered, _ = roundtrip(compressor, data)
        per_block = metrics.per_block_max_relative_error(data, recovered, BLOCK)
        rows.append(
            {
                "solution": solution,
                "bound": f"{level:g}",
                "median_block_max": float(np.median(per_block)),
                "p90_block_max": float(np.percentile(per_block, 90)),
                "worst_block_max": float(per_block.max()),
                "worst/bound": float(per_block.max() / level),
            }
        )
    return rows


def test_fig12_per_block_error_distribution(benchmark, emit, qaoa_snapshot, sup_snapshot):
    qaoa_rows = [row for level in LEVELS for row in _per_block_stats(qaoa_snapshot, level)]
    sup_rows = [row for level in LEVELS for row in _per_block_stats(sup_snapshot, level)]
    benchmark.pedantic(
        lambda: roundtrip(get_compressor("C", bound=1e-3), qaoa_snapshot),
        rounds=1,
        iterations=1,
    )

    emit(
        "Figure 12: per-block maximum pointwise relative errors (Solutions A-D)",
        "qaoa snapshot\n"
        + format_table(qaoa_rows)
        + "\n\nsup snapshot\n"
        + format_table(sup_rows)
        + "\n\npaper shape: every solution stays within the bound; C and D"
        "\noverlap exactly; C/D maxima sit clearly below the bound while A/B"
        "\napproach it.",
    )

    for rows in (qaoa_rows, sup_rows):
        for row in rows:
            assert row["worst/bound"] <= 1.0 + 1e-9
        # C and D overlap: identical per-block maxima at every level.
        for level in LEVELS:
            c_row = next(r for r in rows if r["solution"] == "C" and r["bound"] == f"{level:g}")
            d_row = next(r for r in rows if r["solution"] == "D" and r["bound"] == f"{level:g}")
            assert c_row["worst_block_max"] == d_row["worst_block_max"]
            a_row = next(r for r in rows if r["solution"] == "A" and r["bound"] == f"{level:g}")
            # Over-preservation: C's worst error is farther below the bound
            # than A's.
            assert c_row["worst/bound"] <= a_row["worst/bound"] + 1e-9
