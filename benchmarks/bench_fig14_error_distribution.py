"""Figure 14 — distribution of normalized compression errors (Solution C) and
the non-correlation claim.

The paper plots the CDF of the signed pointwise relative errors normalized by
the bound for one data block at every error level, observing that (1) all
errors stay inside the bound, (2) the distribution is roughly uniform, and
(3) most errors are much smaller than the bound.  It also reports lag-1
autocorrelation of the errors within [-1e-4, 1e-4] on dense data.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.compression import XorBitplaneCompressor, metrics, roundtrip

LEVELS = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5)


def _distribution_rows(data: np.ndarray) -> list[dict]:
    rows = []
    for level in LEVELS:
        compressor = XorBitplaneCompressor(bound=level)
        recovered, _ = roundtrip(compressor, data)
        normalized = metrics.normalized_errors(data, recovered, level)
        errors = recovered - data
        rows.append(
            {
                "bound": f"{level:g}",
                "min_norm_err": float(normalized.min()),
                "max_norm_err": float(normalized.max()),
                "mean_abs_norm_err": float(np.abs(normalized).mean()),
                "frac_below_half_bound": float(np.mean(np.abs(normalized) < 0.5)),
                "lag1_autocorr": metrics.lag1_autocorrelation(errors),
            }
        )
    return rows


def test_fig14_normalized_error_distribution(benchmark, emit, sup_snapshot):
    rows = benchmark.pedantic(
        lambda: _distribution_rows(sup_snapshot), rounds=1, iterations=1
    )

    emit(
        "Figure 14: normalized compression errors of Solution C (sup snapshot)",
        format_table(rows)
        + "\n\npaper shape: all errors within the bound, most well below it,"
        "\nand error series uncorrelated (lag-1 autocorrelation ~ 0).",
    )

    for row in rows:
        assert -1.0 - 1e-9 <= row["min_norm_err"]
        assert row["max_norm_err"] <= 1.0 + 1e-9
        assert row["frac_below_half_bound"] > 0.5
        assert abs(row["lag1_autocorr"]) < 0.1
