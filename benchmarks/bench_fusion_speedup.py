"""Gate fusion + parallel block-task execution speedup.

The paper's time breakdown (Table 2) shows the per-gate decompress → apply →
recompress round trip dominating the runtime.  This bench quantifies the two
attacks this repo mounts on that bottleneck:

* **Fusion** — consecutive same-target/same-control gates multiply into one
  2x2 unitary, so a whole run costs one round trip per block.  Measured as
  the reduction in compressor invocations on a QFT-style workload whose
  per-qubit rotation chains are exactly the fusible pattern.
* **Parallel tasks** — the disjoint-block tasks of a gate plan run on a
  thread pool (``SimulatorConfig.num_workers``); zlib and the NumPy kernels
  release the GIL on block-sized payloads.

Set ``REPRO_BENCH_QUICK=1`` for a CI-sized smoke run.
"""

from __future__ import annotations

import math
import os
import time

import numpy as np

from repro.analysis import format_table
from repro.circuits import QuantumCircuit, fuse_circuit
from repro.core import CompressedSimulator, SimulatorConfig

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))

NUM_QUBITS = 10 if QUICK else 14
BLOCK_AMPLITUDES = 64 if QUICK else 1024
LAYERS = 2 if QUICK else 3
NUM_RANKS = 2


def chain_qft_circuit(num_qubits: int, layers: int) -> QuantumCircuit:
    """QFT-style workload with consecutive same-target rotation chains.

    Each layer applies a 4-gate single-qubit chain per qubit (the fusible
    pattern; think QFT surrounded by phase-estimation pre/post rotations)
    followed by a controlled-phase ladder (not fusible: controls differ).
    """

    circuit = QuantumCircuit(num_qubits, name=f"chain_qft_{num_qubits}")
    for layer in range(layers):
        for qubit in range(num_qubits):
            circuit.h(qubit)
            circuit.t(qubit)
            circuit.rz(0.3 * (qubit + 1) * (layer + 1), qubit)
            circuit.s(qubit)
        for qubit in range(num_qubits - 1):
            circuit.cp(math.pi / (2 + qubit + layer), qubit, qubit + 1)
    return circuit


def _run(circuit, num_qubits: int, *, fusion: bool, workers: int) -> dict:
    config = SimulatorConfig(
        num_ranks=NUM_RANKS,
        block_amplitudes=BLOCK_AMPLITUDES,
        use_block_cache=False,  # keep the round-trip accounting undiluted
        fusion_enabled=fusion,
        num_workers=workers,
    )
    with CompressedSimulator(num_qubits, config) as simulator:
        start = time.perf_counter()
        report = simulator.apply_circuit(circuit)
        elapsed = time.perf_counter() - start
        state = simulator.statevector()
    return {
        "seconds": elapsed,
        "compress_calls": report.compress_calls,
        "decompress_calls": report.decompress_calls,
        "gates": report.gates_executed,
        "tasks": report.tasks_executed,
        "state": state,
    }


def test_fusion_roundtrip_reduction(emit):
    """Fusion must cut compressor invocations >= 2x on the chain workload."""

    circuit = chain_qft_circuit(NUM_QUBITS, LAYERS)
    fused, stats = fuse_circuit(circuit)
    baseline = _run(circuit, NUM_QUBITS, fusion=False, workers=1)
    with_fusion = _run(circuit, NUM_QUBITS, fusion=True, workers=1)

    reduction = baseline["compress_calls"] / max(1, with_fusion["compress_calls"])
    rows = [
        {
            "mode": "fusion off",
            "gates": baseline["gates"],
            "compress_calls": baseline["compress_calls"],
            "seconds": f"{baseline['seconds']:.3f}",
        },
        {
            "mode": "fusion on",
            "gates": with_fusion["gates"],
            "compress_calls": with_fusion["compress_calls"],
            "seconds": f"{with_fusion['seconds']:.3f}",
        },
    ]
    emit(
        f"Fusion round-trip reduction ({NUM_QUBITS} qubits, "
        f"{len(circuit)} gates -> {len(fused)} fused)",
        format_table(rows)
        + f"\ncompressor-invocation reduction: {reduction:.2f}x "
        f"(gate reduction {stats.round_trip_reduction:.2f}x)",
    )

    # Both executions must produce the same state (lossless compression).
    assert np.allclose(baseline["state"], with_fusion["state"], atol=1e-10)
    assert reduction >= 2.0


def test_fusion_parallel_beats_sequential_seed_path(emit):
    """Fusion + 4 workers must beat the seed's sequential path wall-clock."""

    circuit = chain_qft_circuit(NUM_QUBITS, LAYERS)
    # Warm-up run so allocator/zlib effects don't skew the comparison.
    _run(circuit, NUM_QUBITS, fusion=False, workers=1)

    sequential = _run(circuit, NUM_QUBITS, fusion=False, workers=1)
    parallel = _run(circuit, NUM_QUBITS, fusion=True, workers=4)

    speedup = sequential["seconds"] / max(1e-9, parallel["seconds"])
    rows = [
        {
            "mode": "seed (fusion off, 1 worker)",
            "seconds": f"{sequential['seconds']:.3f}",
            "tasks": sequential["tasks"],
        },
        {
            "mode": "fusion on, 4 workers",
            "seconds": f"{parallel['seconds']:.3f}",
            "tasks": parallel["tasks"],
        },
    ]
    emit(
        f"Fusion + parallel execution wall-clock ({NUM_QUBITS} qubits, "
        f"{len(circuit)} gates)",
        format_table(rows) + f"\nspeedup: {speedup:.2f}x",
    )

    assert np.allclose(sequential["state"], parallel["state"], atol=1e-10)
    # The work counters shrink deterministically in every mode; the strict
    # wall-clock comparison is only enforced in the full-size run (quick mode
    # exists for CI smoke on shared runners, where timing is too noisy).
    assert parallel["compress_calls"] * 2 <= sequential["compress_calls"]
    if not QUICK:
        assert parallel["seconds"] < sequential["seconds"]
