"""QAOA MAXCUT over an angle grid as ONE batched ``repro.run()`` call.

QAOA is the paper's NISQ-era benchmark: a hybrid algorithm whose circuits
are moderately entangling and whose output only needs expectation values,
which makes it robust to the small lossy error the compression introduces.
The whole angle grid is submitted as a single batch — the compressed backend
keeps one warm simulator (executor, scratch pool, workers) and resets it
between the nine same-width circuits — and the QAOA energy comes from the
MAXCUT ``Σ Z_u Z_v`` observable evaluated directly on the compressed state,
no statevector and no sampling noise.

Run with:  python examples/qaoa_maxcut.py
"""

from __future__ import annotations

import repro
from repro import SimulatorConfig
from repro.applications import (
    expected_cut_from_zz,
    maxcut_observable,
    maxcut_value,
    qaoa_maxcut_circuit,
    random_regular_graph,
)


def main() -> None:
    num_qubits = 12
    graph = random_regular_graph(num_qubits, degree=4, seed=23)
    optimum = maxcut_value(graph)
    print(
        f"QAOA MAXCUT: {num_qubits}-node random 4-regular graph, "
        f"{graph.number_of_edges()} edges, exact MAXCUT = {optimum}"
    )
    print("compressed simulation with Solution C at a 1e-3 relative bound\n")

    angle_grid = [
        (gamma, beta)
        for gamma in (0.2, 0.4, 0.6)
        for beta in (0.4, 0.8, 1.2)
    ]
    circuits = [
        qaoa_maxcut_circuit(graph, [gamma], [beta]) for gamma, beta in angle_grid
    ]
    observable = maxcut_observable(graph)

    # One batched call: 9 circuits, one warm simulator, exercising the lossy
    # pipeline end to end.
    results = repro.run(
        circuits,
        backend="compressed",
        observables=observable,
        config=SimulatorConfig(
            num_ranks=2,
            start_lossless=False,
            error_levels=(1e-3, 1e-2, 1e-1),
        ),
    )

    best = (0.0, None)
    for (gamma, beta), result in zip(angle_grid, results):
        average_cut = expected_cut_from_zz(graph, result.expectation(observable.label))
        marker = ""
        if average_cut > best[0]:
            best = (average_cut, (gamma, beta))
            marker = "  <- best so far"
        print(f"gamma={gamma:.1f} beta={beta:.1f}: expected cut {average_cut:5.2f}{marker}")

    average, angles = best
    print(
        f"\nbest angles {angles}: expected cut {average:.2f} "
        f"({average / optimum:.0%} of the optimum, "
        f"random guessing gives {graph.number_of_edges() / 2 / optimum:.0%})"
    )


if __name__ == "__main__":
    main()
