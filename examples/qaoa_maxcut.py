"""QAOA MAXCUT on a random 4-regular graph through the compressed simulator.

QAOA is the paper's NISQ-era benchmark: a hybrid algorithm whose circuits are
moderately entangling and whose output only needs to be sampled, which makes
it robust to the small lossy error the compression introduces.  The example
runs one QAOA layer over a small angle grid, entirely on the compressed
simulator, and reports the best average cut found versus the exact optimum.

Run with:  python examples/qaoa_maxcut.py
"""

from __future__ import annotations

import numpy as np

from repro import CompressedSimulator, SimulatorConfig
from repro.applications import (
    expected_cut_from_counts,
    maxcut_value,
    qaoa_maxcut_circuit,
    random_regular_graph,
)


def run_angles(graph, gamma: float, beta: float, shots: int = 400) -> float:
    """Average sampled cut size for one (gamma, beta) pair."""

    num_qubits = graph.number_of_nodes()
    circuit = qaoa_maxcut_circuit(graph, [gamma], [beta])
    config = SimulatorConfig(
        num_ranks=2,
        start_lossless=False,          # exercise the lossy pipeline
        error_levels=(1e-3, 1e-2, 1e-1),
    )
    simulator = CompressedSimulator(num_qubits, config)
    simulator.apply_circuit(circuit)
    counts = simulator.sample_counts(shots, rng=np.random.default_rng(7))
    return expected_cut_from_counts(graph, counts)


def main() -> None:
    num_qubits = 12
    graph = random_regular_graph(num_qubits, degree=4, seed=23)
    optimum = maxcut_value(graph)
    print(
        f"QAOA MAXCUT: {num_qubits}-node random 4-regular graph, "
        f"{graph.number_of_edges()} edges, exact MAXCUT = {optimum}"
    )
    print("compressed simulation with Solution C at a 1e-3 relative bound\n")

    best = (0.0, None)
    for gamma in (0.2, 0.4, 0.6):
        for beta in (0.4, 0.8, 1.2):
            average_cut = run_angles(graph, gamma, beta)
            marker = ""
            if average_cut > best[0]:
                best = (average_cut, (gamma, beta))
                marker = "  <- best so far"
            print(f"gamma={gamma:.1f} beta={beta:.1f}: average cut {average_cut:5.2f}{marker}")

    average, angles = best
    print(
        f"\nbest angles {angles}: average cut {average:.2f} "
        f"({average / optimum:.0%} of the optimum, "
        f"random guessing gives {graph.number_of_edges() / 2 / optimum:.0%})"
    )


if __name__ == "__main__":
    main()
