"""Grover's search under tight memory budgets (the paper's headline workload).

The 61-qubit Grover simulation is the paper's flagship result: the state is
so compressible that 32 EB of amplitudes fit in 768 TB.  This example runs a
scaled-down Grover search under two different memory budgets to show the
trade the paper describes:

* with a moderate budget the adaptive controller settles at a tight error
  bound, the compression ratio is already ~25x and the marked-state
  probability matches the textbook value exactly;
* with an aggressive budget the controller escalates all the way to the
  loosest bound, the ratio jumps by another order of magnitude, and the
  accumulated lossy error visibly dents the amplified probability — memory
  traded for fidelity, which is the whole point of the method.

Run with:  python examples/grover_search.py
"""

from __future__ import annotations

import math

from repro import CompressedSimulator, SimulatorConfig
from repro.analysis import qubit_gain_from_ratio
from repro.applications import grover_circuit

NUM_QUBITS = 16
MARKED = 0b1010110011010011 & ((1 << NUM_QUBITS) - 1)
ITERATIONS = 6


def run_with_budget(circuit, state_fraction: float) -> None:
    """Run the search with a compressed-state budget of ``state_fraction``."""

    dense_bytes = (1 << NUM_QUBITS) * 16
    num_ranks = 2
    block_amplitudes = (1 << NUM_QUBITS) // num_ranks // 8
    scratch = 2 * block_amplitudes * 16 * num_ranks
    budget = scratch + int(dense_bytes * state_fraction)

    config = SimulatorConfig(
        num_ranks=num_ranks,
        block_amplitudes=block_amplitudes,
        memory_budget_bytes=budget,
    )
    simulator = CompressedSimulator(NUM_QUBITS, config)
    report = simulator.apply_circuit(circuit)

    theory = math.sin((2 * ITERATIONS + 1) * math.asin((1 << NUM_QUBITS) ** -0.5)) ** 2
    ratio = simulator.state.compression_ratio()
    print(f"--- compressed-state budget = {state_fraction:.0%} of the dense state ---")
    print(f"escalations        : {report.escalations} "
          f"(final error bound {report.final_error_bound:g})")
    print(f"compression ratio  : {ratio:.0f}x "
          f"(~{qubit_gain_from_ratio(ratio):.1f} extra simulable qubits)")
    print(f"fidelity bound     : {report.fidelity_lower_bound:.4f}")
    print(f"cache              : {report.cache_hits} hits / {report.cache_misses} misses")
    print(f"P(marked state)    : {simulator.probability_of(MARKED):.5f} "
          f"(theory {theory:.5f}, uniform baseline {1 / (1 << NUM_QUBITS):.7f})")
    print()


def main() -> None:
    circuit = grover_circuit(NUM_QUBITS, MARKED, iterations=ITERATIONS)
    dense_bytes = (1 << NUM_QUBITS) * 16
    print(
        f"Grover search: {NUM_QUBITS} qubits, marked state {MARKED}, "
        f"{ITERATIONS} iterations, {len(circuit)} gates, "
        f"dense state {dense_bytes / 2**20:.1f} MiB\n"
    )
    run_with_budget(circuit, 1 / 4)
    run_with_budget(circuit, 1 / 8)
    print(
        "The moderate budget keeps the error bound tight and reproduces the\n"
        "textbook amplification exactly; the aggressive budget buys another\n"
        "~20x of compression at a visible cost in fidelity."
    )


if __name__ == "__main__":
    main()
