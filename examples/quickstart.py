"""Quickstart: the unified ``repro.run()`` API over both simulators.

Builds a small GHZ-plus-QFT circuit and runs it through the backend registry
— once on the dense reference engine and once on the compressed engine — with
one call each.  Sampling, observables and the Table-2 style report all come
back in the same :class:`repro.Result` record, so comparing the engines is a
dict lookup, not a rewrite.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro import PauliObservable, QuantumCircuit, SimulatorConfig, state_fidelity
from repro.circuits import qft_circuit


def build_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation followed by a QFT: entangling but structured."""

    circuit = QuantumCircuit(num_qubits, name="quickstart")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.compose(qft_circuit(num_qubits))
    return circuit


def main() -> None:
    num_qubits = 14
    circuit = build_circuit(num_qubits)
    print(f"circuit: {circuit.name}, {circuit.num_qubits} qubits, {len(circuit)} gates")
    print(f"available backends: {repro.available_backends()}\n")

    # An observable evaluated on the final state by both engines — on the
    # compressed backend this never materialises the state vector.
    observable = PauliObservable.single("Z", 0, num_qubits).with_label("Z0")

    # Reference: the ordinary dense Schrödinger simulation (Intel-QS role).
    dense = repro.run(
        circuit,
        backend="dense",
        shots=5,
        observables=observable,
        seed=0,
        return_statevector=True,
    )
    print(f"dense simulator state size : {dense.metadata['memory_bytes'] / 2**20:.2f} MiB")

    # The compressed simulator: 4 simulated ranks, blocked and compressed
    # state, the paper's adaptive error ladder (it will stay lossless here
    # because no memory budget is set).
    compressed = repro.run(
        circuit,
        backend="compressed",
        shots=5,
        observables=observable,
        seed=0,
        return_statevector=True,
        config=SimulatorConfig(num_ranks=4),
    )

    print(f"compressed state size      : {compressed.metadata['compressed_bytes'] / 2**20:.3f} MiB")
    print(f"compression ratio          : {compressed.metadata['compression_ratio']:.1f}x")
    fidelity = state_fidelity(compressed.statevector, dense.statevector)
    print(f"fidelity vs dense          : {fidelity:.12f}")
    print(f"fidelity lower bound       : {compressed.report['fidelity_lower_bound']:.12f}")
    print(f"<Z0> dense vs compressed   : {dense.expectation('Z0'):+.6f} / "
          f"{compressed.expectation('Z0'):+.6f}")
    print()
    print("time breakdown (Table 2 style, from result.report)")
    for bucket in ("compression", "decompression", "communication", "computation"):
        print(f"  {bucket:<14}: {100 * compressed.report[f'{bucket}_fraction']:5.1f}%")

    # Sampling works directly on the compressed representation; the same
    # seed drives both engines' generators.
    print()
    print("5 samples (compressed):", sorted(compressed.counts.items()))
    print("5 samples (dense)     :", sorted(dense.counts.items()))


if __name__ == "__main__":
    main()
