"""Quickstart: simulate a circuit with the compressed full-state simulator.

Builds a small GHZ-plus-QFT circuit, runs it through both the dense reference
simulator and the compressed simulator, and prints the memory footprint, the
compression ratio, the fidelity between the two results and the time
breakdown — the quantities the paper's Table 2 reports for every benchmark.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CompressedSimulator,
    DenseSimulator,
    QuantumCircuit,
    SimulatorConfig,
    state_fidelity,
)
from repro.circuits import qft_circuit


def build_circuit(num_qubits: int) -> QuantumCircuit:
    """GHZ state preparation followed by a QFT: entangling but structured."""

    circuit = QuantumCircuit(num_qubits, name="quickstart")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    circuit.compose(qft_circuit(num_qubits))
    return circuit


def main() -> None:
    num_qubits = 14
    circuit = build_circuit(num_qubits)
    print(f"circuit: {circuit.name}, {circuit.num_qubits} qubits, {len(circuit)} gates")

    # Reference: the ordinary dense Schrödinger simulation (Intel-QS role).
    dense = DenseSimulator(num_qubits)
    dense.apply_circuit(circuit)
    print(f"dense simulator state size : {dense.memory_bytes() / 2**20:.2f} MiB")

    # The compressed simulator: 4 simulated ranks, blocked and compressed
    # state, the paper's adaptive error ladder (it will stay lossless here
    # because no memory budget is set).
    config = SimulatorConfig(num_ranks=4)
    simulator = CompressedSimulator(num_qubits, config)
    report = simulator.apply_circuit(circuit)

    print(f"compressed state size      : {simulator.state.compressed_bytes() / 2**20:.3f} MiB")
    print(f"compression ratio          : {simulator.state.compression_ratio():.1f}x")
    fidelity = state_fidelity(simulator.statevector(), dense.statevector())
    print(f"fidelity vs dense          : {fidelity:.12f}")
    print(f"fidelity lower bound       : {report.fidelity_lower_bound:.12f}")
    print()
    print("time breakdown (Table 2 style)")
    print(report.summary())

    # Sampling works directly on the compressed representation.
    counts = simulator.sample_counts(5, rng=np.random.default_rng(0))
    print()
    print("5 samples from the compressed state:", sorted(counts.items()))


if __name__ == "__main__":
    main()
