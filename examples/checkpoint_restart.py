"""Checkpoint / restart across a wall-time limit (Section 3.5).

Supercomputer queues cap job wall time (3-24 hours on Theta), so the paper
saves the compressed blocks before a job dies and resumes in the next one.
This example simulates the first half of a random supremacy-style circuit,
checkpoints the compressed state to disk, reloads it in a "new job", finishes
the circuit and verifies the result is identical to an uninterrupted run.

Run with:  python examples/checkpoint_restart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    CompressedSimulator,
    SimulatorConfig,
    load_checkpoint,
    save_checkpoint,
    state_fidelity,
)
from repro.applications import random_supremacy_circuit


def main() -> None:
    num_qubits = 12
    circuit = random_supremacy_circuit(3, 4, depth=12, seed=5)
    gates = list(circuit)
    split = len(gates) // 2
    config = SimulatorConfig(num_ranks=2)
    print(f"random circuit: {num_qubits} qubits, {len(gates)} gates, split at {split}")

    # "Job 1": run the first half and hit the wall-time limit.
    job1 = CompressedSimulator(num_qubits, config)
    job1.apply_circuit(gates[:split])
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "simulation.ckpt"
        written = save_checkpoint(job1, path)
        print(f"job 1 done: {job1.gate_count} gates, checkpoint = {written / 2**10:.1f} KiB")

        # "Job 2": resume from the checkpoint and finish the circuit.
        job2 = load_checkpoint(path)
        print(f"job 2 resumed at gate {job2.gate_count}, "
              f"compression ratio {job2.state.compression_ratio():.1f}x")
        job2.apply_circuit(gates[split:])

    # Uninterrupted reference run for comparison.
    reference = CompressedSimulator(num_qubits, config)
    reference.apply_circuit(circuit)

    fidelity = state_fidelity(job2.statevector(), reference.statevector())
    print(f"fidelity(resumed run, uninterrupted run) = {fidelity:.12f}")
    assert fidelity > 1 - 1e-9
    print("checkpoint/restart reproduces the uninterrupted simulation exactly.")


if __name__ == "__main__":
    main()
