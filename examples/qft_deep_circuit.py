"""Deep-circuit accuracy study: QFT under every lossy error level.

The QFT is the paper's deep-circuit benchmark (Table 2's last column): its
gate count grows quadratically with the register, so lossy error accumulates
over many more compressions than in the other workloads.  This example runs
the same QFT at each of the paper's five error levels, compares the measured
fidelity against the analytic lower bound ``(1 - delta)^gates`` (Figure 6),
and shows that the bound is honoured and increasingly loose.

Run with:  python examples/qft_deep_circuit.py
"""

from __future__ import annotations

import repro
from repro import SimulatorConfig, state_fidelity
from repro.applications import qft_benchmark_circuit
from repro.compression.interface import PAPER_ERROR_LEVELS


def main() -> None:
    num_qubits = 12
    circuit = qft_benchmark_circuit(num_qubits, seed=3)
    print(f"QFT benchmark: {num_qubits} qubits, {len(circuit)} gates")

    reference = repro.run(circuit, backend="dense", return_statevector=True).statevector

    print(f"{'error bound':>12} {'fidelity bound':>15} {'measured fidelity':>18}")
    for bound in PAPER_ERROR_LEVELS:
        result = repro.run(
            circuit,
            backend="compressed",
            return_statevector=True,
            config=SimulatorConfig(
                num_ranks=2,
                start_lossless=False,
                error_levels=(bound,),
                use_block_cache=False,
            ),
        )
        fidelity = state_fidelity(result.statevector, reference)
        print(
            f"{bound:12g} {result.report['fidelity_lower_bound']:15.6f} "
            f"{fidelity:18.12f}"
        )

    print(
        "\nThe measured fidelity always sits above the (1 - delta)^g lower bound;"
        "\nthe truncation errors over-preserve (Figure 13/14), so even the 1e-1"
        "\nlevel retains far more fidelity than the worst case."
    )


if __name__ == "__main__":
    main()
